//===- Lexer.cpp - Facile lexical analyser ---------------------------------===//

#include "src/facile/Lexer.h"

#include "src/support/StringUtils.h"

#include <cctype>
#include <map>

using namespace facile;

const char *facile::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLiteral:
    return "integer literal";
  case TokKind::KwToken:
    return "'token'";
  case TokKind::KwFields:
    return "'fields'";
  case TokKind::KwPat:
    return "'pat'";
  case TokKind::KwSem:
    return "'sem'";
  case TokKind::KwVal:
    return "'val'";
  case TokKind::KwInit:
    return "'init'";
  case TokKind::KwExtern:
    return "'extern'";
  case TokKind::KwFun:
    return "'fun'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwSwitch:
    return "'switch'";
  case TokKind::KwDefault:
    return "'default'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwArray:
    return "'array'";
  case TokKind::KwInt:
    return "'int'";
  case TokKind::KwStream:
    return "'stream'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Question:
    return "'?'";
  case TokKind::Assign:
    return "'='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Tilde:
    return "'~'";
  }
  return "?";
}

namespace {

const std::map<std::string, TokKind> &keywordTable() {
  static const std::map<std::string, TokKind> Table = {
      {"token", TokKind::KwToken},     {"fields", TokKind::KwFields},
      {"pat", TokKind::KwPat},         {"sem", TokKind::KwSem},
      {"val", TokKind::KwVal},         {"init", TokKind::KwInit},
      {"extern", TokKind::KwExtern},   {"fun", TokKind::KwFun},
      {"if", TokKind::KwIf},           {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},     {"switch", TokKind::KwSwitch},
      {"default", TokKind::KwDefault}, {"return", TokKind::KwReturn},
      {"break", TokKind::KwBreak},     {"true", TokKind::KwTrue},
      {"false", TokKind::KwFalse},     {"array", TokKind::KwArray},
      {"int", TokKind::KwInt},         {"stream", TokKind::KwStream},
  };
  return Table;
}

class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diag)
      : Source(Source), Diag(Diag) {}

  std::vector<FacileTok> run() {
    std::vector<FacileTok> Toks;
    for (;;) {
      FacileTok Tok = next();
      bool IsEof = Tok.is(TokKind::Eof);
      Toks.push_back(std::move(Tok));
      if (IsEof)
        return Toks;
    }
  }

private:
  std::string_view Source;
  DiagnosticEngine &Diag;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void skipTrivia() {
    for (;;) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (peek() != '\n' && peek() != '\0')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SourceLoc Start(Line, Col);
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (peek() == '\0') {
            Diag.error(Start, "unterminated block comment");
            return;
          }
          advance();
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  FacileTok make(TokKind Kind, SourceLoc Loc) {
    FacileTok Tok;
    Tok.Kind = Kind;
    Tok.Loc = Loc;
    return Tok;
  }

  FacileTok next() {
    skipTrivia();
    SourceLoc Loc(Line, Col);
    if (Pos >= Source.size())
      return make(TokKind::Eof, Loc);

    char C = peek();
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdentifier(Loc);
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber(Loc);
    advance();
    switch (C) {
    case '(':
      return make(TokKind::LParen, Loc);
    case ')':
      return make(TokKind::RParen, Loc);
    case '{':
      return make(TokKind::LBrace, Loc);
    case '}':
      return make(TokKind::RBrace, Loc);
    case '[':
      return make(TokKind::LBracket, Loc);
    case ']':
      return make(TokKind::RBracket, Loc);
    case ',':
      return make(TokKind::Comma, Loc);
    case ';':
      return make(TokKind::Semi, Loc);
    case ':':
      return make(TokKind::Colon, Loc);
    case '?':
      return make(TokKind::Question, Loc);
    case '+':
      return make(TokKind::Plus, Loc);
    case '-':
      return make(TokKind::Minus, Loc);
    case '*':
      return make(TokKind::Star, Loc);
    case '/':
      return make(TokKind::Slash, Loc);
    case '%':
      return make(TokKind::Percent, Loc);
    case '^':
      return make(TokKind::Caret, Loc);
    case '~':
      return make(TokKind::Tilde, Loc);
    case '=':
      if (peek() == '=') {
        advance();
        return make(TokKind::EqEq, Loc);
      }
      return make(TokKind::Assign, Loc);
    case '!':
      if (peek() == '=') {
        advance();
        return make(TokKind::NotEq, Loc);
      }
      return make(TokKind::Bang, Loc);
    case '<':
      if (peek() == '=') {
        advance();
        return make(TokKind::LessEq, Loc);
      }
      if (peek() == '<') {
        advance();
        return make(TokKind::Shl, Loc);
      }
      return make(TokKind::Less, Loc);
    case '>':
      if (peek() == '=') {
        advance();
        return make(TokKind::GreaterEq, Loc);
      }
      if (peek() == '>') {
        advance();
        return make(TokKind::Shr, Loc);
      }
      return make(TokKind::Greater, Loc);
    case '&':
      if (peek() == '&') {
        advance();
        return make(TokKind::AmpAmp, Loc);
      }
      return make(TokKind::Amp, Loc);
    case '|':
      if (peek() == '|') {
        advance();
        return make(TokKind::PipePipe, Loc);
      }
      return make(TokKind::Pipe, Loc);
    default:
      Diag.error(Loc, strFormat("unexpected character '%c'", C));
      return next();
    }
  }

  FacileTok lexIdentifier(SourceLoc Loc) {
    size_t Start = Pos;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      advance();
    std::string Text(Source.substr(Start, Pos - Start));
    auto It = keywordTable().find(Text);
    if (It != keywordTable().end())
      return make(It->second, Loc);
    FacileTok Tok = make(TokKind::Identifier, Loc);
    Tok.Text = std::move(Text);
    return Tok;
  }

  FacileTok lexNumber(SourceLoc Loc) {
    FacileTok Tok = make(TokKind::IntLiteral, Loc);
    uint64_t Value = 0;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      advance();
      advance();
      bool Any = false;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) {
        char D = advance();
        unsigned Digit = std::isdigit(static_cast<unsigned char>(D))
                             ? static_cast<unsigned>(D - '0')
                             : static_cast<unsigned>(
                                   std::tolower(static_cast<unsigned char>(D)) -
                                   'a' + 10);
        Value = Value * 16 + Digit;
        Any = true;
      }
      if (!Any)
        Diag.error(Loc, "expected hexadecimal digits after '0x'");
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Value = Value * 10 + static_cast<uint64_t>(advance() - '0');
    }
    Tok.IntValue = static_cast<int64_t>(Value);
    return Tok;
  }
};

} // namespace

std::vector<FacileTok> facile::lexFacile(std::string_view Source,
                                         DiagnosticEngine &Diag) {
  return Lexer(Source, Diag).run();
}
