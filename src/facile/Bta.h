//===- Bta.h - Binding-time analysis for Facile IR --------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binding-time analysis at the heart of the Facile compiler (paper
/// §4.1): a forward, flow-sensitive abstract interpretation over the
/// lowered step function that labels every instruction *run-time static*
/// (computable from the action-cache key alone, along the recorded control
/// path) or *dynamic* (must re-execute during fast replay).
///
/// Seeds follow the paper: literals and the simulated text segment are
/// rt-static; `init` globals are rt-static at step entry (they are the
/// key); all other globals are dynamic at entry; extern calls and dynamic
/// builtins are dynamic. Merges join towards dynamic, which bounds the
/// lattice chains and guarantees termination (paper §4.1's argument).
///
/// Arrays carry a single whole-array binding time, resolved by a restart
/// loop: an array is rt-static only if it is an `init` global (or a local
/// array) and *every* access uses rt-static indices/values; any violating
/// access demotes the array and the scalar analysis reruns.
///
/// Where a merge demotes an rt-static slot or global to dynamic, the edge
/// is split and a Sync instruction materialises the memoized value into
/// dynamic state; every rt-static global is similarly flushed before Ret
/// (the paper's §6.3-item-3 rt-static→dynamic flush).
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_BTA_H
#define FACILE_FACILE_BTA_H

#include "src/facile/Lower.h"

#include <vector>

namespace facile {

/// Aggregate results of the analysis, reported for tests and EXPERIMENTS.md.
struct BtaStats {
  unsigned StaticInsts = 0;
  unsigned DynamicInsts = 0;
  unsigned SyncInsts = 0;
  unsigned SplitEdges = 0;
  unsigned ArrayRestarts = 0;
};

/// Runs BTA over \p LP in place: labels every instruction (Inst::Dynamic,
/// Inst::StaticOperands), decides array binding times, splits demoting
/// edges and inserts Sync instructions. Returns analysis statistics.
///
/// \p DynArrays / \p DynLocalArrays receive one flag per global / local
/// array: true when the array is dynamic (lives in the runtime store).
BtaStats annotateStepFunction(LoweredProgram &LP,
                              std::vector<bool> *DynArrays,
                              std::vector<bool> *DynLocalArrays);

} // namespace facile

#endif // FACILE_FACILE_BTA_H
