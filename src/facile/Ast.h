//===- Ast.h - Abstract syntax tree of the Facile language -----*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for Facile programs (paper §3). The tree mirrors the
/// language surface: architecture-description declarations (token/fields,
/// pat, sem) and general simulation code (val, fun, statements,
/// expressions). Nodes carry source locations for diagnostics. Kind tags
/// replace RTTI, following the coding guide.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_AST_H
#define FACILE_FACILE_AST_H

#include "src/support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace facile {
namespace ast {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// Facile's value types. `stream` is an address into the simulated text
/// segment; it behaves like an integer but documents intent (and enables
/// the ?fetch/?exec attributes conceptually). Arrays are fixed-size integer
/// vectors with value semantics — the language has no pointers (paper §3.2).
struct Type {
  enum class Kind : uint8_t { Int, Stream, Array, Void } K = Kind::Int;
  uint32_t ArraySize = 0; ///< valid when K == Array

  static Type intTy() { return {Kind::Int, 0}; }
  static Type streamTy() { return {Kind::Stream, 0}; }
  static Type arrayTy(uint32_t N) { return {Kind::Array, N}; }
  static Type voidTy() { return {Kind::Void, 0}; }

  bool isArray() const { return K == Kind::Array; }
  bool isVoid() const { return K == Kind::Void; }
  /// Int and Stream are interchangeable scalars.
  bool isScalar() const { return K == Kind::Int || K == Kind::Stream; }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLit,
  Name,      ///< local, global, parameter or instruction field
  Unary,
  Binary,
  Call,      ///< function, extern or builtin call
  Index,     ///< array element read
  Attribute, ///< expr ? name (args): ?sext, ?zext, ?fetch, ?exec
};

enum class UnOp : uint8_t { Neg, Not, BitNot };

enum class BinOp : uint8_t {
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  Lt, Le, Gt, Ge, Eq, Ne,
  LogAnd, LogOr,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind Kind;
  SourceLoc Loc;

  // IntLit
  int64_t IntValue = 0;
  // Name / Call / Index / Attribute
  std::string Name;
  // Unary / Binary
  UnOp UOp = UnOp::Neg;
  BinOp BOp = BinOp::Add;
  // Operands: Unary/Attribute/Index use Lhs (base); Binary uses Lhs/Rhs.
  ExprPtr Lhs;
  ExprPtr Rhs;
  // Call and Attribute arguments.
  std::vector<ExprPtr> Args;

  explicit Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  ValDecl,    ///< local variable declaration
  Assign,     ///< name = expr
  AssignIndex,///< name[index] = expr
  If,
  While,
  Switch,     ///< pattern switch over a stream expression
  Return,
  Break,
  ExprStmt,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One `pat name:` or `default:` arm of a pattern switch.
struct SwitchCase {
  SourceLoc Loc;
  std::string PatName; ///< empty for `default:`
  std::vector<StmtPtr> Body;
};

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;

  // Block
  std::vector<StmtPtr> Body;
  // ValDecl / Assign / AssignIndex
  std::string Name;
  Type DeclType;        ///< ValDecl: declared (or inferred) type
  ExprPtr Index;        ///< AssignIndex subscript
  ExprPtr Value;        ///< initializer / RHS / condition / switch operand
  // If / While
  StmtPtr Then;
  StmtPtr Else;
  // Switch
  std::vector<SwitchCase> Cases;

  explicit Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// One named bit range within a token declaration. Bits are inclusive and
/// numbered from 0 = LSB, as in the paper's `fields op 24:31` syntax.
struct FieldDecl {
  SourceLoc Loc;
  std::string Name;
  unsigned Lo = 0;
  unsigned Hi = 0;
};

/// `token instruction[32] fields ...;`
struct TokenDecl {
  SourceLoc Loc;
  std::string Name;
  unsigned Width = 32;
  std::vector<FieldDecl> Fields;
};

/// Pattern expressions constrain token fields: `op==0x00 && (i==1 || f==0)`.
enum class PatExprKind : uint8_t { FieldCmp, PatRef, AndOp, OrOp, True };

struct PatExpr;
using PatExprPtr = std::unique_ptr<PatExpr>;

struct PatExpr {
  PatExprKind Kind;
  SourceLoc Loc;
  std::string Name;     ///< field name (FieldCmp) or pattern name (PatRef)
  bool IsEqual = true;  ///< FieldCmp: == (true) or != (false)
  int64_t Value = 0;    ///< FieldCmp comparison constant
  PatExprPtr Lhs, Rhs;  ///< AndOp / OrOp operands

  explicit PatExpr(PatExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
};

/// `pat add = op==0x00 && (i==1 || fill==0);`
struct PatDecl {
  SourceLoc Loc;
  std::string Name;
  PatExprPtr Pattern;
};

/// `sem add { ... }` — functional/timing semantics for a pattern.
struct SemDecl {
  SourceLoc Loc;
  std::string PatName;
  std::vector<StmtPtr> Body;
};

/// `val R = array(32){0};` or `init val PC = 0;` — a global. Globals marked
/// `init` form the run-time static key of the simulator step function
/// (paper §3.2: the arguments to main / the `init` variable).
struct GlobalDecl {
  SourceLoc Loc;
  std::string Name;
  Type DeclType;
  bool IsInit = false;
  ExprPtr Initializer;      ///< scalar initializer (constant expression)
  ExprPtr ArrayFill;        ///< array(N){fill} fill value
};

/// `extern cache_access(int, int) : int;`
struct ExternDecl {
  SourceLoc Loc;
  std::string Name;
  unsigned Arity = 0;
  bool HasResult = false;
};

/// `fun step(a, b) { ... }`
struct FunDecl {
  SourceLoc Loc;
  std::string Name;
  std::vector<std::string> Params;
  std::vector<StmtPtr> Body;
};

/// A whole parsed Facile program.
struct Program {
  std::vector<TokenDecl> Tokens;
  std::vector<PatDecl> Patterns;
  std::vector<SemDecl> Semantics;
  std::vector<GlobalDecl> Globals;
  std::vector<ExternDecl> Externs;
  std::vector<FunDecl> Functions;
};

} // namespace ast
} // namespace facile

#endif // FACILE_FACILE_AST_H
