//===- Sema.h - Facile semantic analysis ------------------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for Facile: symbol tables, type checking and the
/// language restrictions that make the binding-time analysis tractable
/// (paper §3.2) — no pointers by construction, and **no recursion**, which
/// both simplifies the interprocedural analysis and lets the compiler fully
/// inline the step function.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_SEMA_H
#define FACILE_FACILE_SEMA_H

#include "src/facile/Ast.h"
#include "src/support/Diagnostic.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace facile {

/// Resolved, checked view of a Facile program. The lowering phase consumes
/// this instead of re-deriving symbol information.
struct SemaResult {
  /// One global variable (paper: globals are dynamic at step entry except
  /// the `init` globals, which form the action-cache key).
  struct GlobalInfo {
    const ast::GlobalDecl *Decl = nullptr;
    ast::Type Ty;
    bool IsInit = false;
    int64_t InitValue = 0; ///< scalar initial value / array fill value
    /// True when no statement in the program assigns this global. Scalar
    /// never-assigned globals fold to compile-time constants during
    /// lowering (a slice of the paper's §6.3 constant-folding suggestion).
    bool NeverAssigned = true;
  };

  const ast::TokenDecl *Token = nullptr; ///< at most one token declaration
  std::map<std::string, const ast::FieldDecl *> Fields;
  std::map<std::string, const ast::PatDecl *> Patterns;
  std::vector<const ast::PatDecl *> PatternOrder;
  std::map<std::string, const ast::SemDecl *> Semantics;

  std::vector<GlobalInfo> Globals; ///< declaration order
  std::map<std::string, unsigned> GlobalIndex;
  std::vector<unsigned> InitGlobals; ///< indices of init globals, in order

  std::vector<const ast::ExternDecl *> Externs;
  std::map<std::string, unsigned> ExternIndex;

  std::map<std::string, const ast::FunDecl *> Functions;
  const ast::FunDecl *Main = nullptr;

  const GlobalInfo *findGlobal(const std::string &Name) const {
    auto It = GlobalIndex.find(Name);
    return It == GlobalIndex.end() ? nullptr : &Globals[It->second];
  }
};

/// Runs all semantic checks over \p P. Returns std::nullopt (with
/// diagnostics in \p Diag) if the program is ill-formed. \p P must outlive
/// the result, which holds pointers into it.
std::optional<SemaResult> analyzeFacile(const ast::Program &P,
                                        DiagnosticEngine &Diag);

} // namespace facile

#endif // FACILE_FACILE_SEMA_H
