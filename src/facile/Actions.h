//===- Actions.h - Dynamic basic block (action) extraction -----*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// After binding-time analysis, the dynamic instructions of each basic
/// block form a *dynamic basic block* — the unit of replay stored in the
/// specialized action cache (paper §4.2, Figure 8). Each block with dynamic
/// content is assigned an action number; the fast simulator replays cached
/// behaviour by reading an action number and executing the corresponding
/// dynamic code, feeding rt-static placeholders from the cache.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_ACTIONS_H
#define FACILE_FACILE_ACTIONS_H

#include "src/facile/Ir.h"

#include <cstdint>
#include <vector>

namespace facile {

/// Per-basic-block action information.
struct ActionBlockInfo {
  static constexpr int32_t NoAction = -1;
  int32_t ActionId = NoAction; ///< NoAction when the block is fully rt-static
  std::vector<uint32_t> DynInsts; ///< indices of dynamic instructions
  bool EndsWithTest = false; ///< terminator is a dynamic-result test (Branch)
  bool EndsWithRet = false;  ///< block ends the step
};

/// Action numbering for one compiled step function.
struct ActionTable {
  std::vector<ActionBlockInfo> Blocks;   ///< indexed by block id
  std::vector<uint32_t> ActionToBlock;   ///< action id -> block id

  unsigned numActions() const {
    return static_cast<unsigned>(ActionToBlock.size());
  }
};

/// Builds the action table for an annotated step function.
ActionTable extractActions(const ir::StepFunction &F);

} // namespace facile

#endif // FACILE_FACILE_ACTIONS_H
