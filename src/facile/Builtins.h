//===- Builtins.h - Facile built-in functions -------------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The built-in functions of the Facile language. The paper folds
/// domain-specific data structures and functions into the language so that
/// "their semantics are known [and] a compiler can analyze and transform
/// code that uses them" (§3.2). Here that knowledge is each builtin's
/// binding time: dynamic builtins touch simulator state that exists at
/// replay time (target memory, the cycle counter, the halt flag), while
/// pure builtins are constant given the loaded image.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_BUILTINS_H
#define FACILE_FACILE_BUILTINS_H

#include <cstdint>

namespace facile {

enum class Builtin : uint8_t {
  MemLd,     ///< mem_ld(addr) -> word: functional data-memory read
  MemLd8,    ///< mem_ld8(addr) -> byte
  MemSt,     ///< mem_st(addr, v): functional data-memory write
  MemSt8,    ///< mem_st8(addr, v)
  SimHalt,   ///< sim_halt(): stop the simulation after this step
  Retire,    ///< retire(n): account n retired target instructions
  Cycles,    ///< cycles(n): advance the simulated cycle counter by n
  TextStart, ///< text_start() -> first text address (run-time static)
  TextEnd,   ///< text_end() -> one past the last text address (rt-static)
  Print,     ///< print(v): debug output
};

struct BuiltinInfo {
  Builtin B;
  const char *Name;
  unsigned Arity;
  bool HasResult;
  /// Dynamic builtins read or write dynamic simulator state and must execute
  /// during fast replay; pure builtins fold into run-time static code.
  bool Dynamic;
};

/// Looks a builtin up by name; returns nullptr for unknown names.
const BuiltinInfo *lookupBuiltin(const char *Name);

/// Total number of builtins (for table-driven tests).
unsigned numBuiltins();

/// Returns the info record for \p B.
const BuiltinInfo &builtinInfo(Builtin B);

} // namespace facile

#endif // FACILE_FACILE_BUILTINS_H
