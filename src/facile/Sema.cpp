//===- Sema.cpp - Facile semantic analysis ----------------------------------===//

#include "src/facile/Sema.h"

#include "src/facile/Builtins.h"
#include "src/support/StringUtils.h"

#include <cassert>
#include <functional>
#include <set>

using namespace facile;
using namespace facile::ast;

namespace {

class Sema {
public:
  Sema(const Program &P, DiagnosticEngine &Diag) : P(P), Diag(Diag) {}

  std::optional<SemaResult> run() {
    collectToken();
    collectPatterns();
    collectSemantics();
    collectGlobals();
    collectExterns();
    collectFunctions();
    if (Diag.hasErrors())
      return std::nullopt;
    checkNoRecursion();
    checkBodies();
    if (Diag.hasErrors())
      return std::nullopt;
    return std::optional<SemaResult>(std::move(R));
  }

private:
  const Program &P;
  DiagnosticEngine &Diag;
  SemaResult R;

  //===-- declaration collection --------------------------------------------
  void collectToken() {
    for (const TokenDecl &T : P.Tokens) {
      if (R.Token) {
        Diag.error(T.Loc, "only one token declaration is supported (fixed "
                          "32-bit instruction words)");
        continue;
      }
      if (T.Width != 32) {
        Diag.error(T.Loc, strFormat("token width must be 32, got %u",
                                    T.Width));
        continue;
      }
      R.Token = &T;
      for (const FieldDecl &F : T.Fields) {
        if (F.Hi >= T.Width) {
          Diag.error(F.Loc, strFormat("field '%s' exceeds token width",
                                      F.Name.c_str()));
          continue;
        }
        if (!R.Fields.emplace(F.Name, &F).second)
          Diag.error(F.Loc,
                     strFormat("duplicate field '%s'", F.Name.c_str()));
      }
    }
  }

  void checkPatExpr(const PatExpr &E) {
    switch (E.Kind) {
    case PatExprKind::FieldCmp: {
      auto It = R.Fields.find(E.Name);
      if (It == R.Fields.end()) {
        Diag.error(E.Loc, strFormat("unknown field '%s' in pattern",
                                    E.Name.c_str()));
        return;
      }
      const FieldDecl &F = *It->second;
      uint64_t Max = (F.Hi - F.Lo + 1) >= 64
                         ? ~0ull
                         : (1ull << (F.Hi - F.Lo + 1)) - 1;
      if (static_cast<uint64_t>(E.Value) > Max)
        Diag.error(E.Loc, strFormat("constant does not fit field '%s'",
                                    E.Name.c_str()));
      return;
    }
    case PatExprKind::PatRef:
      // Patterns may reference earlier patterns; forward references would
      // allow cycles, so require definition before use.
      if (R.Patterns.find(E.Name) == R.Patterns.end())
        Diag.error(E.Loc, strFormat("pattern '%s' referenced before its "
                                    "definition",
                                    E.Name.c_str()));
      return;
    case PatExprKind::AndOp:
    case PatExprKind::OrOp:
      checkPatExpr(*E.Lhs);
      checkPatExpr(*E.Rhs);
      return;
    case PatExprKind::True:
      return;
    }
  }

  void collectPatterns() {
    for (const PatDecl &D : P.Patterns) {
      checkPatExpr(*D.Pattern);
      if (!R.Patterns.emplace(D.Name, &D).second) {
        Diag.error(D.Loc, strFormat("duplicate pattern '%s'", D.Name.c_str()));
        continue;
      }
      R.PatternOrder.push_back(&D);
    }
  }

  void collectSemantics() {
    for (const SemDecl &D : P.Semantics) {
      if (R.Patterns.find(D.PatName) == R.Patterns.end()) {
        Diag.error(D.Loc, strFormat("semantics for undeclared pattern '%s'",
                                    D.PatName.c_str()));
        continue;
      }
      if (!R.Semantics.emplace(D.PatName, &D).second)
        Diag.error(D.Loc, strFormat("duplicate semantics for pattern '%s'",
                                    D.PatName.c_str()));
    }
  }

  /// Evaluates a constant expression (global initializers). Earlier scalar
  /// globals may be referenced.
  std::optional<int64_t> constEval(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      return E.IntValue;
    case ExprKind::Name: {
      auto It = R.GlobalIndex.find(E.Name);
      if (It == R.GlobalIndex.end() || R.Globals[It->second].Ty.isArray()) {
        Diag.error(E.Loc, strFormat("'%s' is not a constant", E.Name.c_str()));
        return std::nullopt;
      }
      return R.Globals[It->second].InitValue;
    }
    case ExprKind::Unary: {
      auto V = constEval(*E.Lhs);
      if (!V)
        return std::nullopt;
      switch (E.UOp) {
      case UnOp::Neg:
        return -*V;
      case UnOp::Not:
        return *V == 0 ? 1 : 0;
      case UnOp::BitNot:
        return ~*V;
      }
      return std::nullopt;
    }
    case ExprKind::Binary: {
      auto A = constEval(*E.Lhs);
      auto B = constEval(*E.Rhs);
      if (!A || !B)
        return std::nullopt;
      switch (E.BOp) {
      case BinOp::Add:
        return *A + *B;
      case BinOp::Sub:
        return *A - *B;
      case BinOp::Mul:
        return *A * *B;
      case BinOp::Div:
        return *B == 0 ? 0 : *A / *B;
      case BinOp::Rem:
        return *B == 0 ? *A : *A % *B;
      case BinOp::And:
        return *A & *B;
      case BinOp::Or:
        return *A | *B;
      case BinOp::Xor:
        return *A ^ *B;
      case BinOp::Shl:
        return *A << (*B & 63);
      case BinOp::Shr:
        return static_cast<int64_t>(static_cast<uint64_t>(*A) >> (*B & 63));
      default:
        break;
      }
      Diag.error(E.Loc, "operator not allowed in constant expression");
      return std::nullopt;
    }
    default:
      Diag.error(E.Loc, "global initializers must be constant expressions");
      return std::nullopt;
    }
  }

  void collectGlobals() {
    for (const GlobalDecl &D : P.Globals) {
      if (R.GlobalIndex.count(D.Name)) {
        Diag.error(D.Loc, strFormat("duplicate global '%s'", D.Name.c_str()));
        continue;
      }
      SemaResult::GlobalInfo Info;
      Info.Decl = &D;
      Info.Ty = D.DeclType;
      Info.IsInit = D.IsInit;
      if (Info.Ty.isArray() && D.Initializer) {
        Diag.error(D.Loc, "array globals take an array(N){fill} initializer");
        continue;
      }
      const Expr *Init =
          Info.Ty.isArray() ? D.ArrayFill.get() : D.Initializer.get();
      if (Init) {
        auto V = constEval(*Init);
        if (!V)
          continue;
        Info.InitValue = *V;
      }
      unsigned Index = static_cast<unsigned>(R.Globals.size());
      R.GlobalIndex.emplace(D.Name, Index);
      if (D.IsInit)
        R.InitGlobals.push_back(Index);
      R.Globals.push_back(Info);
    }
  }

  void collectExterns() {
    for (const ExternDecl &D : P.Externs) {
      if (R.ExternIndex.count(D.Name) || R.GlobalIndex.count(D.Name)) {
        Diag.error(D.Loc, strFormat("duplicate declaration '%s'",
                                    D.Name.c_str()));
        continue;
      }
      if (lookupBuiltin(D.Name.c_str())) {
        Diag.error(D.Loc, strFormat("'%s' is a builtin and cannot be an "
                                    "extern",
                                    D.Name.c_str()));
        continue;
      }
      R.ExternIndex.emplace(D.Name, static_cast<unsigned>(R.Externs.size()));
      R.Externs.push_back(&D);
    }
  }

  void collectFunctions() {
    for (const FunDecl &D : P.Functions) {
      if (R.Functions.count(D.Name) || R.ExternIndex.count(D.Name) ||
          R.GlobalIndex.count(D.Name) || lookupBuiltin(D.Name.c_str())) {
        Diag.error(D.Loc, strFormat("duplicate declaration '%s'",
                                    D.Name.c_str()));
        continue;
      }
      R.Functions.emplace(D.Name, &D);
      if (D.Name == "main")
        R.Main = &D;
    }
    if (!R.Main) {
      Diag.error(SourceLoc(), "a simulator must define 'fun main()' — the "
                              "memoized step function (paper §3.2)");
      return;
    }
    if (!R.Main->Params.empty())
      Diag.error(R.Main->Loc,
                 "main takes no parameters; its run-time static inputs are "
                 "the 'init' globals");
    if (R.InitGlobals.empty())
      Diag.warning(R.Main->Loc,
                   "no 'init' globals declared: every step shares one action "
                   "cache key");
  }

  //===-- recursion check ----------------------------------------------------
  void calleesOfExpr(const Expr &E, std::set<std::string> *Out) {
    if (E.Kind == ExprKind::Call && R.Functions.count(E.Name))
      Out->insert(E.Name);
    if (E.Lhs)
      calleesOfExpr(*E.Lhs, Out);
    if (E.Rhs)
      calleesOfExpr(*E.Rhs, Out);
    for (const ExprPtr &A : E.Args)
      calleesOfExpr(*A, Out);
  }

  void calleesOfStmt(const Stmt &S, std::set<std::string> *Out) {
    if (S.Index)
      calleesOfExpr(*S.Index, Out);
    if (S.Value)
      calleesOfExpr(*S.Value, Out);
    if (S.Then)
      calleesOfStmt(*S.Then, Out);
    if (S.Else)
      calleesOfStmt(*S.Else, Out);
    for (const StmtPtr &B : S.Body)
      calleesOfStmt(*B, Out);
    for (const SwitchCase &C : S.Cases)
      for (const StmtPtr &B : C.Body)
        calleesOfStmt(*B, Out);
  }

  std::set<std::string> calleesOf(const FunDecl &F) {
    std::set<std::string> Out;
    for (const StmtPtr &S : F.Body)
      calleesOfStmt(*S, &Out);
    return Out;
  }

  /// ?exec() dispatches into sem bodies, so sem bodies participate in the
  /// call graph through every function that uses ?exec. For the recursion
  /// check we conservatively treat sem bodies as reachable from any
  /// function and forbid sem bodies from using ?exec or calling functions
  /// that (transitively) use ?exec.
  bool usesExec(const Expr &E) {
    if (E.Kind == ExprKind::Attribute && E.Name == "exec")
      return true;
    if (E.Lhs && usesExec(*E.Lhs))
      return true;
    if (E.Rhs && usesExec(*E.Rhs))
      return true;
    for (const ExprPtr &A : E.Args)
      if (usesExec(*A))
        return true;
    return false;
  }

  bool usesExecStmt(const Stmt &S) {
    if (S.Index && usesExec(*S.Index))
      return true;
    if (S.Value && usesExec(*S.Value))
      return true;
    if (S.Kind == StmtKind::Switch)
      return true; // pattern switch also dispatches into decode logic
    if (S.Then && usesExecStmt(*S.Then))
      return true;
    if (S.Else && usesExecStmt(*S.Else))
      return true;
    for (const StmtPtr &B : S.Body)
      if (usesExecStmt(*B))
        return true;
    for (const SwitchCase &C : S.Cases)
      for (const StmtPtr &B : C.Body)
        if (usesExecStmt(*B))
          return true;
    return false;
  }

  void checkNoRecursion() {
    // DFS over the function call graph with an explicit colour map.
    enum Colour { White, Grey, Black };
    std::map<std::string, Colour> Colours;
    std::vector<std::string> Stack;

    // Recursive lambda via explicit worklist-free recursion.
    std::function<bool(const std::string &)> Visit =
        [&](const std::string &Name) -> bool {
      Colour &C = Colours[Name];
      if (C == Black)
        return true;
      if (C == Grey) {
        std::string Cycle = Name;
        for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
          Cycle = *It + " -> " + Cycle;
          if (*It == Name)
            break;
        }
        Diag.error(R.Functions.at(Name)->Loc,
                   strFormat("recursion is not allowed in Facile (paper "
                             "§3.2): %s",
                             Cycle.c_str()));
        return false;
      }
      C = Grey;
      Stack.push_back(Name);
      for (const std::string &Callee : calleesOf(*R.Functions.at(Name)))
        if (!Visit(Callee))
          return false;
      Stack.pop_back();
      Colours[Name] = Black;
      return true;
    };

    for (const auto &[Name, Decl] : R.Functions)
      if (!Visit(Name))
        return;

    // Sem bodies must not re-enter instruction dispatch (?exec / pattern
    // switch), directly or through calls, or decoding could recurse
    // unboundedly.
    std::set<std::string> ExecUsers;
    for (const auto &[Name, Decl] : R.Functions) {
      for (const StmtPtr &S : Decl->Body)
        if (usesExecStmt(*S)) {
          ExecUsers.insert(Name);
          break;
        }
    }
    // Transitive closure over callers -> callees.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &[Name, Decl] : R.Functions) {
        if (ExecUsers.count(Name))
          continue;
        for (const std::string &Callee : calleesOf(*Decl))
          if (ExecUsers.count(Callee)) {
            ExecUsers.insert(Name);
            Changed = true;
            break;
          }
      }
    }
    for (const SemDecl &D : P.Semantics) {
      std::set<std::string> Callees;
      bool Direct = false;
      for (const StmtPtr &S : D.Body) {
        calleesOfStmt(*S, &Callees);
        if (usesExecStmt(*S))
          Direct = true;
      }
      bool Indirect = false;
      for (const std::string &Callee : Callees)
        if (ExecUsers.count(Callee))
          Indirect = true;
      if (Direct || Indirect)
        Diag.error(D.Loc, strFormat("sem '%s' re-enters instruction dispatch "
                                    "(?exec or pattern switch), which would "
                                    "recurse",
                                    D.PatName.c_str()));
    }
  }

  //===-- body checking -------------------------------------------------------
  struct Scope {
    Scope *Parent = nullptr;
    std::map<std::string, Type> Locals;
    bool FieldsVisible = false; ///< inside a pattern case or sem body
    bool InLoop = false;

    const Type *lookup(const std::string &Name) const {
      for (const Scope *S = this; S; S = S->Parent) {
        auto It = S->Locals.find(Name);
        if (It != S->Locals.end())
          return &It->second;
      }
      return nullptr;
    }
    bool fieldsVisible() const {
      for (const Scope *S = this; S; S = S->Parent)
        if (S->FieldsVisible)
          return true;
      return false;
    }
    bool inLoop() const {
      for (const Scope *S = this; S; S = S->Parent)
        if (S->InLoop)
          return true;
      return false;
    }
  };

  Type checkExpr(const Expr &E, Scope &Sc) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      return Type::intTy();
    case ExprKind::Name: {
      if (const Type *T = Sc.lookup(E.Name)) {
        if (T->isArray())
          Diag.error(E.Loc, strFormat("array '%s' must be indexed",
                                      E.Name.c_str()));
        return *T;
      }
      if (Sc.fieldsVisible() && R.Fields.count(E.Name))
        return Type::intTy();
      if (const SemaResult::GlobalInfo *G = R.findGlobal(E.Name)) {
        if (G->Ty.isArray())
          Diag.error(E.Loc, strFormat("array '%s' must be indexed",
                                      E.Name.c_str()));
        return G->Ty;
      }
      Diag.error(E.Loc, strFormat("undefined name '%s'", E.Name.c_str()));
      return Type::intTy();
    }
    case ExprKind::Unary:
      requireScalar(checkExpr(*E.Lhs, Sc), E.Loc);
      return Type::intTy();
    case ExprKind::Binary:
      requireScalar(checkExpr(*E.Lhs, Sc), E.Loc);
      requireScalar(checkExpr(*E.Rhs, Sc), E.Loc);
      return Type::intTy();
    case ExprKind::Call:
      return checkCall(E, Sc);
    case ExprKind::Index: {
      Type Base = lookupArray(E.Name, E.Loc, Sc);
      requireScalar(checkExpr(*E.Lhs, Sc), E.Loc);
      (void)Base;
      return Type::intTy();
    }
    case ExprKind::Attribute:
      return checkAttribute(E, Sc);
    }
    return Type::intTy();
  }

  void requireScalar(Type T, SourceLoc Loc) {
    if (!T.isScalar())
      Diag.error(Loc, "expected a scalar value");
  }

  Type lookupArray(const std::string &Name, SourceLoc Loc, Scope &Sc) {
    if (const Type *T = Sc.lookup(Name)) {
      if (!T->isArray())
        Diag.error(Loc, strFormat("'%s' is not an array", Name.c_str()));
      return *T;
    }
    if (const SemaResult::GlobalInfo *G = R.findGlobal(Name)) {
      if (!G->Ty.isArray())
        Diag.error(Loc, strFormat("'%s' is not an array", Name.c_str()));
      return G->Ty;
    }
    Diag.error(Loc, strFormat("undefined name '%s'", Name.c_str()));
    return Type::arrayTy(1);
  }

  Type checkCall(const Expr &E, Scope &Sc) {
    for (const ExprPtr &A : E.Args)
      requireScalar(checkExpr(*A, Sc), A->Loc);
    if (auto It = R.Functions.find(E.Name); It != R.Functions.end()) {
      if (It->second->Params.size() != E.Args.size())
        Diag.error(E.Loc,
                   strFormat("'%s' expects %zu arguments, got %zu",
                             E.Name.c_str(), It->second->Params.size(),
                             E.Args.size()));
      if (E.Name == "main")
        Diag.error(E.Loc, "main cannot be called; the runtime invokes it");
      // Functions that end without `return e` yield 0; all are int-typed.
      return Type::intTy();
    }
    if (auto It = R.ExternIndex.find(E.Name); It != R.ExternIndex.end()) {
      const ExternDecl &D = *R.Externs[It->second];
      if (D.Arity != E.Args.size())
        Diag.error(E.Loc, strFormat("extern '%s' expects %u arguments, got "
                                    "%zu",
                                    E.Name.c_str(), D.Arity, E.Args.size()));
      return D.HasResult ? Type::intTy() : Type::voidTy();
    }
    if (const BuiltinInfo *B = lookupBuiltin(E.Name.c_str())) {
      if (B->Arity != E.Args.size())
        Diag.error(E.Loc, strFormat("builtin '%s' expects %u arguments, got "
                                    "%zu",
                                    E.Name.c_str(), B->Arity, E.Args.size()));
      return B->HasResult ? Type::intTy() : Type::voidTy();
    }
    Diag.error(E.Loc, strFormat("call to undefined function '%s'",
                                E.Name.c_str()));
    return Type::intTy();
  }

  Type checkAttribute(const Expr &E, Scope &Sc) {
    requireScalar(checkExpr(*E.Lhs, Sc), E.Loc);
    if (E.Name == "sext" || E.Name == "zext") {
      if (E.Args.size() != 1 || E.Args[0]->Kind != ExprKind::IntLit) {
        Diag.error(E.Loc, strFormat("?%s takes one literal bit-width",
                                    E.Name.c_str()));
        return Type::intTy();
      }
      int64_t W = E.Args[0]->IntValue;
      if (W < 1 || W > 64)
        Diag.error(E.Loc, "bit-width must be between 1 and 64");
      return Type::intTy();
    }
    if (E.Name == "fetch") {
      if (!E.Args.empty())
        Diag.error(E.Loc, "?fetch takes no arguments");
      return Type::intTy();
    }
    if (E.Name == "exec") {
      if (!E.Args.empty())
        Diag.error(E.Loc, "?exec takes no arguments");
      if (!R.Token)
        Diag.error(E.Loc, "?exec requires a token declaration");
      return Type::voidTy();
    }
    Diag.error(E.Loc, strFormat("unknown attribute '?%s'", E.Name.c_str()));
    return Type::intTy();
  }

  void checkStmt(const Stmt &S, Scope &Sc) {
    switch (S.Kind) {
    case StmtKind::Block: {
      Scope Inner;
      Inner.Parent = &Sc;
      for (const StmtPtr &B : S.Body)
        checkStmt(*B, Inner);
      return;
    }
    case StmtKind::ValDecl: {
      if (Sc.Locals.count(S.Name))
        Diag.error(S.Loc, strFormat("redefinition of '%s'", S.Name.c_str()));
      else if (R.findGlobal(S.Name))
        Diag.warning(S.Loc, strFormat("local '%s' shadows a global",
                                      S.Name.c_str()));
      if (S.Value)
        requireScalar(checkExpr(*S.Value, Sc), S.Loc);
      else if (!S.DeclType.isArray())
        Diag.error(S.Loc, strFormat("local '%s' needs an initializer",
                                    S.Name.c_str()));
      Sc.Locals.emplace(S.Name, S.DeclType);
      return;
    }
    case StmtKind::Assign: {
      requireScalar(checkExpr(*S.Value, Sc), S.Loc);
      if (const Type *T = Sc.lookup(S.Name)) {
        if (T->isArray())
          Diag.error(S.Loc, "cannot assign whole arrays");
        return;
      }
      if (const SemaResult::GlobalInfo *G = R.findGlobal(S.Name)) {
        if (G->Ty.isArray())
          Diag.error(S.Loc, "cannot assign whole arrays");
        return;
      }
      if (Sc.fieldsVisible() && R.Fields.count(S.Name)) {
        Diag.error(S.Loc, "instruction fields are read-only");
        return;
      }
      Diag.error(S.Loc, strFormat("assignment to undefined variable '%s'",
                                  S.Name.c_str()));
      return;
    }
    case StmtKind::AssignIndex:
      lookupArray(S.Name, S.Loc, Sc);
      requireScalar(checkExpr(*S.Index, Sc), S.Loc);
      requireScalar(checkExpr(*S.Value, Sc), S.Loc);
      return;
    case StmtKind::If:
      requireScalar(checkExpr(*S.Value, Sc), S.Loc);
      checkStmt(*S.Then, Sc);
      if (S.Else)
        checkStmt(*S.Else, Sc);
      return;
    case StmtKind::While: {
      requireScalar(checkExpr(*S.Value, Sc), S.Loc);
      Scope Inner;
      Inner.Parent = &Sc;
      Inner.InLoop = true;
      checkStmt(*S.Then, Inner);
      return;
    }
    case StmtKind::Switch: {
      requireScalar(checkExpr(*S.Value, Sc), S.Loc);
      if (!R.Token)
        Diag.error(S.Loc, "pattern switch requires a token declaration");
      bool SawDefault = false;
      for (const SwitchCase &C : S.Cases) {
        if (C.PatName.empty()) {
          if (SawDefault)
            Diag.error(C.Loc, "duplicate default case");
          SawDefault = true;
        } else if (!R.Patterns.count(C.PatName)) {
          Diag.error(C.Loc, strFormat("unknown pattern '%s' in case",
                                      C.PatName.c_str()));
        }
        Scope Inner;
        Inner.Parent = &Sc;
        Inner.FieldsVisible = true;
        for (const StmtPtr &B : C.Body)
          checkStmt(*B, Inner);
      }
      return;
    }
    case StmtKind::Return:
      if (S.Value)
        requireScalar(checkExpr(*S.Value, Sc), S.Loc);
      return;
    case StmtKind::Break:
      if (!Sc.inLoop())
        Diag.error(S.Loc, "'break' outside of a loop");
      return;
    case StmtKind::ExprStmt:
      checkExpr(*S.Value, Sc);
      return;
    }
  }

  /// Records direct assignments to globals so never-assigned scalar
  /// globals can be constant-folded during lowering. A local of the same
  /// name shadows the global, but treating the global as assigned anyway
  /// is merely conservative.
  void noteAssignments(const Stmt &S) {
    if (S.Kind == StmtKind::Assign || S.Kind == StmtKind::AssignIndex) {
      auto It = R.GlobalIndex.find(S.Name);
      if (It != R.GlobalIndex.end())
        R.Globals[It->second].NeverAssigned = false;
    }
    if (S.Then)
      noteAssignments(*S.Then);
    if (S.Else)
      noteAssignments(*S.Else);
    for (const StmtPtr &B : S.Body)
      noteAssignments(*B);
    for (const SwitchCase &C : S.Cases)
      for (const StmtPtr &B : C.Body)
        noteAssignments(*B);
  }

  void checkBodies() {
    for (const auto &[Name, Decl] : R.Functions)
      for (const StmtPtr &S : Decl->Body)
        noteAssignments(*S);
    for (const SemDecl &D : P.Semantics)
      for (const StmtPtr &S : D.Body)
        noteAssignments(*S);

    for (const auto &[Name, Decl] : R.Functions) {
      Scope Sc;
      for (const std::string &Param : Decl->Params) {
        if (!Sc.Locals.emplace(Param, Type::intTy()).second)
          Diag.error(Decl->Loc, strFormat("duplicate parameter '%s'",
                                          Param.c_str()));
      }
      for (const StmtPtr &S : Decl->Body)
        checkStmt(*S, Sc);
    }
    for (const SemDecl &D : P.Semantics) {
      Scope Sc;
      Sc.FieldsVisible = true;
      for (const StmtPtr &S : D.Body)
        checkStmt(*S, Sc);
    }
  }
};

} // namespace

std::optional<SemaResult> facile::analyzeFacile(const Program &P,
                                                DiagnosticEngine &Diag) {
  Sema S(P, Diag);
  return S.run();
}
