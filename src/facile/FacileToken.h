//===- FacileToken.h - Lexical tokens of the Facile language ---*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the Facile lexer. Naming note: "token" is
/// overloaded in this project — the *lexer* tokens here are unrelated to
/// Facile's `token` declarations, which describe machine-instruction
/// encodings (paper §3.1).
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_FACILETOKEN_H
#define FACILE_FACILE_FACILETOKEN_H

#include "src/support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace facile {

enum class TokKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,

  // Keywords.
  KwToken,
  KwFields,
  KwPat,
  KwSem,
  KwVal,
  KwInit,
  KwExtern,
  KwFun,
  KwIf,
  KwElse,
  KwWhile,
  KwSwitch,
  KwDefault,
  KwReturn,
  KwBreak,
  KwTrue,
  KwFalse,
  KwArray,
  KwInt,
  KwStream,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Question,
  Assign,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Shl,
  Shr,
  AmpAmp,
  PipePipe,
  Bang,
  Tilde,
};

/// One lexed token with its source location and payload.
struct FacileTok {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;   ///< identifier spelling
  int64_t IntValue = 0;

  bool is(TokKind K) const { return Kind == K; }
};

/// Returns a human-readable name for diagnostics ("'&&'", "identifier", ...).
const char *tokKindName(TokKind Kind);

} // namespace facile

#endif // FACILE_FACILE_FACILETOKEN_H
