//===- Lexer.h - Facile lexical analyser ------------------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_LEXER_H
#define FACILE_FACILE_LEXER_H

#include "src/facile/FacileToken.h"
#include "src/support/Diagnostic.h"

#include <string_view>
#include <vector>

namespace facile {

/// Lexes a whole Facile source buffer into a token vector (terminated by an
/// Eof token). Lexical errors are reported to \p Diag; lexing continues so
/// that multiple errors surface in one pass.
std::vector<FacileTok> lexFacile(std::string_view Source,
                                 DiagnosticEngine &Diag);

} // namespace facile

#endif // FACILE_FACILE_LEXER_H
