//===- Actions.cpp - Dynamic basic block (action) extraction ----------------===//

#include "src/facile/Actions.h"

using namespace facile;
using namespace facile::ir;

ActionTable facile::extractActions(const StepFunction &F) {
  ActionTable T;
  T.Blocks.resize(F.Blocks.size());
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    ActionBlockInfo &Info = T.Blocks[B];
    const Block &Blk = F.Blocks[B];
    for (uint32_t I = 0; I != Blk.Insts.size(); ++I)
      if (Blk.Insts[I].Dynamic)
        Info.DynInsts.push_back(I);
    const Inst &Term = Blk.terminator();
    Info.EndsWithTest = Term.Opcode == Op::Branch && Term.Dynamic;
    Info.EndsWithRet = Term.Opcode == Op::Ret;
    // Ret blocks always get an action: the end-of-step INDEX node lives
    // there even when the block has no other dynamic work.
    if (!Info.DynInsts.empty() || Info.EndsWithRet) {
      Info.ActionId = static_cast<int32_t>(T.ActionToBlock.size());
      T.ActionToBlock.push_back(B);
    }
  }
  return T;
}
