//===- Passes.cpp - IR optimization passes over the lowered CFG ------------===//

#include "src/facile/Passes.h"

#include "src/support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <iterator>

using namespace facile;
using namespace facile::ir;

namespace {

/// Enumerates the slot *operands* of \p I (not the destination), passing a
/// mutable reference so passes can rewrite uses in place. Enumeration is
/// opcode-driven: fields that exist but are meaningless for an opcode
/// (e.g. Un's Imm-as-width) are never visited.
template <typename Fn> void forEachUsedSlot(Inst &I, Fn F) {
  switch (I.Opcode) {
  case Op::Copy:
  case Op::Un:
  case Op::StoreGlobal:
  case Op::LoadElem:
  case Op::LoadLocElem:
  case Op::InitLocArray:
  case Op::Fetch:
  case Op::Branch:
    F(I.A);
    break;
  case Op::Bin:
  case Op::StoreElem:
  case Op::StoreLocElem:
    F(I.A);
    F(I.B);
    break;
  case Op::CallExtern:
  case Op::CallBuiltin:
    for (SlotId &S : I.Args)
      F(S);
    break;
  case Op::SyncSlot:
    // Reads the rt-static cell of Dst (post-BTA only). Never rewritten by
    // the scalar passes (they run pre-BTA), but the liveness and verifier
    // walks must see the use.
    F(I.Dst);
    break;
  case Op::Const:
  case Op::LoadGlobal:
  case Op::Jump:
  case Op::Ret:
  case Op::SyncGlobal:
  case Op::SyncArray:
    break;
  }
}

template <typename Fn> void forEachUsedSlot(const Inst &I, Fn F) {
  forEachUsedSlot(const_cast<Inst &>(I),
                  [&](SlotId &S) { F(static_cast<SlotId>(S)); });
}

/// True when removing \p I is unobservable provided its destination is
/// never read. Stores, calls with effects, syncs and terminators all stay.
bool isPure(const Inst &I) {
  switch (I.Opcode) {
  case Op::Const:
  case Op::Copy:
  case Op::Bin:
  case Op::Un:
  case Op::LoadGlobal:
  case Op::LoadElem:
  case Op::LoadLocElem:
  case Op::Fetch:
    return true;
  case Op::CallBuiltin:
    return !builtinInfo(static_cast<Builtin>(I.Imm)).Dynamic;
  default:
    return false;
  }
}

unsigned countInsts(const StepFunction &F) {
  unsigned N = 0;
  for (const Block &B : F.Blocks)
    N += static_cast<unsigned>(B.Insts.size());
  return N;
}

/// Reference counts of every block as a branch target (entry gets +1 so it
/// is never considered dead or mergeable-away).
std::vector<uint32_t> refCounts(const StepFunction &F) {
  std::vector<uint32_t> Refs(F.Blocks.size(), 0);
  Refs[0] = 1;
  for (const Block &B : F.Blocks) {
    const Inst &T = B.terminator();
    if (T.Opcode == Op::Jump) {
      ++Refs[T.Target];
    } else if (T.Opcode == Op::Branch) {
      ++Refs[T.Target];
      ++Refs[T.Target2];
    }
  }
  return Refs;
}

} // namespace

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

unsigned facile::foldConstants(StepFunction &F, PassPipelineStats &Stats) {
  unsigned Changes = 0;
  // Block-local constness: slots holding a known literal at the current
  // program point. Epoch-stamped so per-block reset is O(1).
  std::vector<uint32_t> Epoch(F.NumSlots, 0);
  std::vector<int64_t> Value(F.NumSlots, 0);
  uint32_t Cur = 0;

  for (Block &B : F.Blocks) {
    ++Cur;
    auto known = [&](SlotId S) { return Epoch[S] == Cur; };

    for (Inst &I : B.Insts) {
      switch (I.Opcode) {
      case Op::Copy:
        if (known(I.A)) {
          I.Opcode = Op::Const;
          I.Imm = Value[I.A];
          I.A = NoSlot;
          ++Stats.Folded;
          ++Changes;
        }
        break;
      case Op::Bin:
        if (known(I.A) && known(I.B)) {
          I.Imm = evalBin(I.BinKind, Value[I.A], Value[I.B]);
          I.Opcode = Op::Const;
          I.A = I.B = NoSlot;
          ++Stats.Folded;
          ++Changes;
        }
        break;
      case Op::Un:
        if (known(I.A)) {
          I.Imm = evalUn(I.UnOp, Value[I.A], I.Imm);
          I.Opcode = Op::Const;
          I.A = NoSlot;
          ++Stats.Folded;
          ++Changes;
        }
        break;
      case Op::Branch:
        if (known(I.A)) {
          I.Target = Value[I.A] != 0 ? I.Target : I.Target2;
          I.Opcode = Op::Jump;
          I.A = NoSlot;
          I.Target2 = 0;
          ++Stats.BranchesFolded;
          ++Changes;
        }
        break;
      default:
        break;
      }
      if (I.Dst != NoSlot) {
        if (I.Opcode == Op::Const) {
          Epoch[I.Dst] = Cur;
          Value[I.Dst] = I.Imm;
        } else {
          Epoch[I.Dst] = 0; // redefined with an unknown value
        }
      }
    }
  }
  return Changes;
}

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

unsigned facile::propagateCopies(StepFunction &F, PassPipelineStats &Stats) {
  unsigned Changes = 0;
  // Block-local aliases: Alias[d] = source slot of the last `d = copy s`
  // with neither d nor s redefined since. Epoch-stamped like the folder.
  std::vector<uint32_t> Epoch(F.NumSlots, 0);
  std::vector<SlotId> Alias(F.NumSlots, NoSlot);
  uint32_t Cur = 0;

  for (Block &B : F.Blocks) {
    ++Cur;
    std::vector<SlotId> LiveAliases; // keys valid this block, for kill scans

    auto resolve = [&](SlotId S) {
      return Epoch[S] == Cur ? Alias[S] : S;
    };
    auto kill = [&](SlotId W) {
      // W is redefined: drop its own alias and any alias rooted at W.
      Epoch[W] = 0;
      for (SlotId K : LiveAliases)
        if (Epoch[K] == Cur && Alias[K] == W)
          Epoch[K] = 0;
    };

    for (Inst &I : B.Insts) {
      forEachUsedSlot(I, [&](SlotId &S) {
        SlotId R = resolve(S);
        if (R != S) {
          S = R;
          ++Stats.CopiesPropagated;
          ++Changes;
        }
      });
      if (I.Dst != NoSlot && I.Opcode != Op::SyncSlot) {
        kill(I.Dst);
        if (I.Opcode == Op::Copy && I.A != I.Dst) {
          Epoch[I.Dst] = Cur;
          Alias[I.Dst] = I.A; // already resolved to its root above
          LiveAliases.push_back(I.Dst);
        }
      }
    }
  }
  return Changes;
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

unsigned facile::eliminateDeadCode(StepFunction &F, PassPipelineStats &Stats) {
  const size_t NumBlocks = F.Blocks.size();

  // Predecessor lists for the backward fixpoint.
  std::vector<std::vector<uint32_t>> Preds(NumBlocks);
  for (uint32_t B = 0; B != NumBlocks; ++B) {
    uint32_t Succs[2];
    unsigned Count = 0;
    F.successors(B, Succs, &Count);
    for (unsigned K = 0; K != Count; ++K)
      Preds[Succs[K]].push_back(B);
  }

  // LiveIn per block over all slots.
  std::vector<std::vector<bool>> LiveIn(NumBlocks,
                                        std::vector<bool>(F.NumSlots, false));
  std::deque<uint32_t> Work;
  std::vector<bool> InWork(NumBlocks, true);
  for (uint32_t B = 0; B != NumBlocks; ++B)
    Work.push_back(B);

  std::vector<bool> Live(F.NumSlots);
  while (!Work.empty()) {
    uint32_t B = Work.front();
    Work.pop_front();
    InWork[B] = false;

    // LiveOut = union of successors' LiveIn.
    std::fill(Live.begin(), Live.end(), false);
    uint32_t Succs[2];
    unsigned Count = 0;
    F.successors(B, Succs, &Count);
    for (unsigned K = 0; K != Count; ++K)
      for (SlotId S = 0; S != F.NumSlots; ++S)
        if (LiveIn[Succs[K]][S])
          Live[S] = true;

    for (size_t I = F.Blocks[B].Insts.size(); I-- > 0;) {
      const Inst &In = F.Blocks[B].Insts[I];
      if (In.Dst != NoSlot && In.Opcode != Op::SyncSlot)
        Live[In.Dst] = false;
      forEachUsedSlot(In, [&](SlotId S) { Live[S] = true; });
    }

    if (Live != LiveIn[B]) {
      LiveIn[B] = Live;
      for (uint32_t P : Preds[B])
        if (!InWork[P]) {
          Work.push_back(P);
          InWork[P] = true;
        }
    }
  }

  // Backward sweep per block: drop pure instructions whose Dst is dead.
  // Skipping a removed instruction's uses lets whole chains die in one
  // sweep within a block.
  unsigned Removed = 0;
  for (uint32_t B = 0; B != NumBlocks; ++B) {
    std::fill(Live.begin(), Live.end(), false);
    uint32_t Succs[2];
    unsigned Count = 0;
    F.successors(B, Succs, &Count);
    for (unsigned K = 0; K != Count; ++K)
      for (SlotId S = 0; S != F.NumSlots; ++S)
        if (LiveIn[Succs[K]][S])
          Live[S] = true;

    std::vector<Inst> &Insts = F.Blocks[B].Insts;
    std::vector<bool> Keep(Insts.size(), true);
    for (size_t I = Insts.size(); I-- > 0;) {
      Inst &In = Insts[I];
      if (isPure(In) && In.Dst != NoSlot && !Live[In.Dst]) {
        Keep[I] = false;
        ++Removed;
        continue;
      }
      if (In.Dst != NoSlot && In.Opcode != Op::SyncSlot)
        Live[In.Dst] = false;
      forEachUsedSlot(In, [&](SlotId S) { Live[S] = true; });
    }
    if (Removed != 0) {
      size_t W = 0;
      for (size_t I = 0; I != Insts.size(); ++I)
        if (Keep[I]) {
          if (W != I)
            Insts[W] = std::move(Insts[I]);
          ++W;
        }
      Insts.resize(W);
    }
  }
  Stats.DeadRemoved += Removed;
  return Removed;
}

//===----------------------------------------------------------------------===//
// CFG simplification
//===----------------------------------------------------------------------===//

unsigned facile::simplifyCfg(StepFunction &F, PassPipelineStats &Stats) {
  unsigned Changes = 0;
  const size_t NumBlocks = F.Blocks.size();

  // 1. Jump threading: resolve chains of blocks that consist of a single
  // unconditional Jump. A visited set guards against empty-block cycles.
  auto isTrivial = [&](uint32_t B) {
    return F.Blocks[B].Insts.size() == 1 &&
           F.Blocks[B].terminator().Opcode == Op::Jump;
  };
  std::vector<bool> OnChain(NumBlocks);
  auto resolve = [&](uint32_t B) {
    std::fill(OnChain.begin(), OnChain.end(), false);
    while (isTrivial(B) && !OnChain[B]) {
      OnChain[B] = true;
      B = F.Blocks[B].terminator().Target;
    }
    return B;
  };
  for (Block &B : F.Blocks) {
    Inst &T = B.Insts.back();
    if (T.Opcode == Op::Jump) {
      uint32_t N = resolve(T.Target);
      if (N != T.Target) {
        T.Target = N;
        ++Stats.JumpsThreaded;
        ++Changes;
      }
    } else if (T.Opcode == Op::Branch) {
      for (uint32_t *Tgt : {&T.Target, &T.Target2}) {
        uint32_t N = resolve(*Tgt);
        if (N != *Tgt) {
          *Tgt = N;
          ++Stats.JumpsThreaded;
          ++Changes;
        }
      }
      if (T.Target == T.Target2) {
        // Both arms reach the same block: degrade to a Jump. The condition
        // slot stays live via other uses or dies in the next DCE round.
        T.Opcode = Op::Jump;
        T.A = NoSlot;
        T.Target2 = 0;
        ++Stats.BranchesFolded;
        ++Changes;
      }
    }
  }

  // 2. Merge single-reference Jump successors into their predecessor.
  std::vector<uint32_t> Refs = refCounts(F);
  std::vector<bool> Gone(NumBlocks, false);
  for (uint32_t B = 0; B != NumBlocks; ++B) {
    if (Gone[B])
      continue;
    for (;;) {
      Inst &T = F.Blocks[B].Insts.back();
      if (T.Opcode != Op::Jump)
        break;
      uint32_t S = T.Target;
      if (S == B || S == 0 || Refs[S] != 1 || Gone[S])
        break;
      std::vector<Inst> &Dst = F.Blocks[B].Insts;
      std::vector<Inst> &Src = F.Blocks[S].Insts;
      Dst.pop_back(); // drop the Jump
      Dst.insert(Dst.end(), std::make_move_iterator(Src.begin()),
                 std::make_move_iterator(Src.end()));
      Src.clear();
      Gone[S] = true;
      ++Stats.BlocksMerged;
      ++Changes;
    }
  }

  // 3. Drop unreachable blocks and compact ids. The Ret block is pinned
  // even when unreachable (e.g. a step that always loops) so the
  // one-Ret-per-function invariant survives.
  std::vector<bool> Reach(NumBlocks, false);
  std::deque<uint32_t> Work;
  Reach[0] = true;
  Work.push_back(0);
  while (!Work.empty()) {
    uint32_t B = Work.front();
    Work.pop_front();
    uint32_t Succs[2];
    unsigned Count = 0;
    F.successors(B, Succs, &Count);
    for (unsigned K = 0; K != Count; ++K)
      if (!Reach[Succs[K]]) {
        Reach[Succs[K]] = true;
        Work.push_back(Succs[K]);
      }
  }
  for (uint32_t B = 0; B != NumBlocks; ++B)
    if (!Gone[B] && !F.Blocks[B].Insts.empty() &&
        F.Blocks[B].terminator().Opcode == Op::Ret)
      Reach[B] = true; // pin the exit block

  std::vector<uint32_t> Remap(NumBlocks, ~0u);
  uint32_t Next = 0;
  for (uint32_t B = 0; B != NumBlocks; ++B)
    if (Reach[B] && !Gone[B])
      Remap[B] = Next++;
  if (Next != NumBlocks) {
    Stats.BlocksRemoved += static_cast<unsigned>(NumBlocks) - Next;
    Changes += static_cast<unsigned>(NumBlocks) - Next;
    std::vector<Block> NewBlocks(Next);
    for (uint32_t B = 0; B != NumBlocks; ++B)
      if (Remap[B] != ~0u)
        NewBlocks[Remap[B]] = std::move(F.Blocks[B]);
    for (Block &B : NewBlocks) {
      Inst &T = B.Insts.back();
      if (T.Opcode == Op::Jump) {
        T.Target = Remap[T.Target];
      } else if (T.Opcode == Op::Branch) {
        T.Target = Remap[T.Target];
        T.Target2 = Remap[T.Target2];
      }
    }
    F.Blocks = std::move(NewBlocks);
  }
  return Changes;
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

std::string facile::verifyStepFunction(const StepFunction &F,
                                       const std::vector<GlobalVar> &Globals,
                                       const std::vector<ExternFn> &Externs,
                                       bool PostBta) {
  auto err = [](uint32_t B, size_t I, const char *Msg) {
    return strFormat("b%u[%zu]: %s", B, I, Msg);
  };
  if (F.Blocks.empty())
    return "step function has no blocks";

  unsigned Rets = 0;
  for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
    const Block &Blk = F.Blocks[B];
    if (Blk.Insts.empty())
      return strFormat("b%u: empty block", B);
    for (size_t I = 0; I != Blk.Insts.size(); ++I) {
      const Inst &In = Blk.Insts[I];
      const bool IsLast = I + 1 == Blk.Insts.size();
      if (In.isTerminator() != IsLast)
        return err(B, I, IsLast ? "block does not end with a terminator"
                                : "terminator in mid-block");

      // Slot ranges: destination and every used operand.
      if (In.Dst != NoSlot && In.Dst >= F.NumSlots)
        return err(B, I, "destination slot out of range");
      bool SlotOk = true;
      forEachUsedSlot(In, [&](SlotId S) {
        if (S == NoSlot || S >= F.NumSlots)
          SlotOk = false;
      });
      if (!SlotOk)
        return err(B, I, "operand slot missing or out of range");

      switch (In.Opcode) {
      case Op::Const:
      case Op::Copy:
      case Op::Bin:
      case Op::Un:
      case Op::Fetch:
        if (In.Dst == NoSlot)
          return err(B, I, "value-producing instruction without destination");
        break;
      case Op::LoadGlobal:
      case Op::StoreGlobal:
      case Op::SyncGlobal:
        if (In.Id >= Globals.size() || Globals[In.Id].IsArray)
          return err(B, I, "scalar global id invalid");
        if (In.Opcode == Op::LoadGlobal && In.Dst == NoSlot)
          return err(B, I, "load without destination");
        break;
      case Op::LoadElem:
      case Op::StoreElem:
      case Op::SyncArray:
        if (In.Id >= Globals.size() || !Globals[In.Id].IsArray)
          return err(B, I, "array global id invalid");
        if (In.Opcode == Op::LoadElem && In.Dst == NoSlot)
          return err(B, I, "load without destination");
        break;
      case Op::LoadLocElem:
      case Op::StoreLocElem:
      case Op::InitLocArray:
        if (In.Id >= F.LocalArrays.size())
          return err(B, I, "local array id invalid");
        break;
      case Op::CallExtern:
        if (In.Id >= Externs.size())
          return err(B, I, "extern id invalid");
        if (In.Args.size() != Externs[In.Id].Arity)
          return err(B, I, "extern arity mismatch");
        if ((In.Dst != NoSlot) != Externs[In.Id].HasResult)
          return err(B, I, "extern result mismatch");
        break;
      case Op::CallBuiltin: {
        if (In.Imm < 0 || In.Imm >= static_cast<int64_t>(numBuiltins()))
          return err(B, I, "builtin id invalid");
        const BuiltinInfo &BI = builtinInfo(static_cast<Builtin>(In.Imm));
        if (In.Args.size() != BI.Arity)
          return err(B, I, "builtin arity mismatch");
        if (In.Dst != NoSlot && !BI.HasResult)
          return err(B, I, "result-less builtin with destination");
        break;
      }
      case Op::Jump:
        if (In.Target >= F.Blocks.size())
          return err(B, I, "jump target out of range");
        break;
      case Op::Branch:
        if (In.Target >= F.Blocks.size() || In.Target2 >= F.Blocks.size())
          return err(B, I, "branch target out of range");
        break;
      case Op::Ret:
        ++Rets;
        break;
      case Op::SyncSlot:
        if (In.Dst == NoSlot)
          return err(B, I, "sync without a slot");
        break;
      }

      if (PostBta) {
        if (In.StaticOperands != 0 && !In.Dynamic)
          return err(B, I, "StaticOperands on an rt-static instruction");
        if ((In.Opcode == Op::SyncSlot || In.Opcode == Op::SyncGlobal ||
             In.Opcode == Op::SyncArray) &&
            !In.Dynamic)
          return err(B, I, "rt-static sync instruction");
        if (In.Opcode == Op::CallExtern && !In.Dynamic)
          return err(B, I, "rt-static extern call");
        if (In.Opcode == Op::CallBuiltin && !In.Dynamic &&
            builtinInfo(static_cast<Builtin>(In.Imm)).Dynamic)
          return err(B, I, "rt-static dynamic builtin");
      } else {
        if (In.Opcode == Op::SyncSlot || In.Opcode == Op::SyncGlobal ||
            In.Opcode == Op::SyncArray)
          return err(B, I, "sync instruction before binding-time analysis");
      }
    }
  }
  if (Rets != 1)
    return strFormat("expected exactly one Ret, found %u", Rets);

  // Definite assignment: every slot is written before read on every path
  // (lowering guarantees it; BTA's Undef lattice element and the engines'
  // uninitialised slot files rely on it).
  {
    const size_t N = F.Blocks.size();
    std::vector<std::vector<bool>> In(N);
    std::deque<uint32_t> Work;
    std::vector<bool> Queued(N, false);
    In[0].assign(F.NumSlots, false);
    Work.push_back(0);
    Queued[0] = true;
    std::vector<bool> Defined;
    std::string Violation;
    while (!Work.empty()) {
      uint32_t B = Work.front();
      Work.pop_front();
      Queued[B] = false;
      Defined = In[B];
      for (size_t I = 0; I != F.Blocks[B].Insts.size(); ++I) {
        const Inst &Ins = F.Blocks[B].Insts[I];
        forEachUsedSlot(Ins, [&](SlotId S) {
          if (!Defined[S] && Violation.empty())
            Violation = strFormat("b%u[%zu]: slot s%u read before assignment",
                                  B, I, S);
        });
        if (Ins.Dst != NoSlot)
          Defined[Ins.Dst] = true;
      }
      if (!Violation.empty())
        return Violation;
      uint32_t Succs[2];
      unsigned Count = 0;
      F.successors(B, Succs, &Count);
      for (unsigned K = 0; K != Count; ++K) {
        uint32_t S = Succs[K];
        bool Changed = false;
        if (In[S].empty()) {
          In[S] = Defined;
          Changed = true;
        } else {
          for (size_t I = 0; I != In[S].size(); ++I)
            if (In[S][I] && !Defined[I]) {
              In[S][I] = false; // meet = intersection
              Changed = true;
            }
        }
        if (Changed && !Queued[S]) {
          Work.push_back(S);
          Queued[S] = true;
        }
      }
    }
  }
  return std::string();
}

//===----------------------------------------------------------------------===//
// Pipeline driver
//===----------------------------------------------------------------------===//

bool facile::runPassPipeline(LoweredProgram &LP, PassPipelineStats &Stats,
                             std::string *Error) {
  StepFunction &F = LP.Step;
  Stats.InstsBefore = countInsts(F);
  Stats.BlocksBefore = static_cast<unsigned>(F.Blocks.size());

  auto verify = [&](const char *PassName) {
    if (!Error)
      return true;
    std::string E = verifyStepFunction(F, LP.Globals, LP.Externs);
    if (E.empty())
      return true;
    *Error = strFormat("IR verifier failed after %s: %s", PassName,
                       E.c_str());
    return false;
  };

  if (!verify("lowering"))
    return false;

  // Passes enable each other (folding exposes dead code, DCE empties
  // blocks, merging creates longer blocks for the local passes), so loop
  // until a whole round changes nothing. The bound is a backstop: each
  // round either removes instructions/blocks or rewrites operands toward
  // canonical form, so real programs converge in a handful of rounds.
  constexpr unsigned MaxRounds = 16;
  for (unsigned Round = 0; Round != MaxRounds; ++Round) {
    unsigned Changes = 0;
    Changes += foldConstants(F, Stats);
    if (!verify("foldConstants"))
      return false;
    Changes += propagateCopies(F, Stats);
    if (!verify("propagateCopies"))
      return false;
    Changes += eliminateDeadCode(F, Stats);
    if (!verify("eliminateDeadCode"))
      return false;
    Changes += simplifyCfg(F, Stats);
    if (!verify("simplifyCfg"))
      return false;
    ++Stats.Rounds;
    if (Changes == 0)
      break;
  }

  Stats.InstsAfter = countInsts(F);
  Stats.BlocksAfter = static_cast<unsigned>(F.Blocks.size());
  return true;
}
