//===- Bta.cpp - Binding-time analysis for Facile IR ------------------------===//

#include "src/facile/Bta.h"

#include <cassert>
#include <deque>
#include <map>

using namespace facile;
using namespace facile::ir;

namespace {

/// The binding-time lattice. Join is max(); Undef is bottom (a value not
/// yet defined along any path into the merge).
enum BT : uint8_t { Undef = 0, Stat = 1, Dyn = 2 };

BT join(BT A, BT B) { return A > B ? A : B; }

/// Enumerates the slot operands of \p I in placeholder order: A, B, Args.
template <typename Fn> void forEachUse(const Inst &I, Fn F) {
  unsigned Pos = 0;
  if (I.A != NoSlot && I.Opcode != Op::SyncSlot)
    F(I.A, Pos);
  ++Pos;
  if (I.B != NoSlot)
    F(I.B, Pos);
  ++Pos;
  for (size_t K = 0; K != I.Args.size(); ++K)
    F(I.Args[K], Pos + static_cast<unsigned>(K));
}

class Analyzer {
public:
  Analyzer(LoweredProgram &LP, std::vector<bool> *DynArrays,
           std::vector<bool> *DynLocalArrays)
      : F(LP.Step), Globals(LP.Globals), DynArrays(*DynArrays),
        DynLocalArrays(*DynLocalArrays) {}

  BtaStats run() {
    computeCrossSlots();
    seedArrayClasses();
    // Restart loop: rerun the scalar fixpoint until no rt-static array is
    // accessed dynamically.
    for (;;) {
      fixpoint();
      if (!demoteViolatingArrays())
        break;
      ++Stats.ArrayRestarts;
    }
    labelInstructions();
    insertSyncs();
    return Stats;
  }

private:
  StepFunction &F;
  std::vector<GlobalVar> &Globals;
  std::vector<bool> &DynArrays;
  std::vector<bool> &DynLocalArrays;
  BtaStats Stats;

  // Cross-block slots get dense indices into the per-block entry states;
  // block-local temporaries are tracked only in the walk scratch.
  std::vector<uint32_t> CrossIndex; ///< slot -> dense index or ~0u
  std::vector<SlotId> CrossSlots;   ///< dense index -> slot
  static constexpr uint32_t NotCross = ~0u;

  /// Per-block entry state: [cross slots..., scalar globals...]. Present
  /// (non-empty) only for reached blocks.
  std::vector<std::vector<uint8_t>> Entry;
  std::vector<uint8_t> Scratch;        ///< full slot array during a walk
  std::vector<uint8_t> GlobalScratch;  ///< scalar global BTs during a walk

  size_t stateSize() const { return CrossSlots.size() + Globals.size(); }

  void computeCrossSlots() {
    // A slot referenced by more than one block must be carried in block
    // entry states; lowering guarantees single-block slots are defined
    // before use within their block.
    std::vector<uint32_t> FirstBlock(F.NumSlots, NotCross);
    std::vector<bool> Cross(F.NumSlots, false);
    for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
      auto Touch = [&](SlotId S) {
        if (S == NoSlot)
          return;
        if (FirstBlock[S] == NotCross)
          FirstBlock[S] = B;
        else if (FirstBlock[S] != B)
          Cross[S] = true;
      };
      for (const Inst &I : F.Blocks[B].Insts) {
        forEachUse(I, [&](SlotId S, unsigned) { Touch(S); });
        if (I.A != NoSlot)
          Touch(I.A);
        Touch(I.Dst);
      }
    }
    CrossIndex.assign(F.NumSlots, NotCross);
    for (SlotId S = 0; S != F.NumSlots; ++S)
      if (Cross[S]) {
        CrossIndex[S] = static_cast<uint32_t>(CrossSlots.size());
        CrossSlots.push_back(S);
      }
  }

  void seedArrayClasses() {
    DynArrays.assign(Globals.size(), false);
    for (size_t G = 0; G != Globals.size(); ++G)
      if (Globals[G].IsArray && !Globals[G].IsInit)
        DynArrays[G] = true; // non-init arrays are dynamic at entry
    DynLocalArrays.assign(F.LocalArrays.size(), false);
  }

  //===-- state plumbing -------------------------------------------------------
  std::vector<uint8_t> initialEntryState() const {
    std::vector<uint8_t> St(stateSize(), Undef);
    for (size_t G = 0; G != Globals.size(); ++G)
      if (!Globals[G].IsArray)
        St[CrossSlots.size() + G] =
            Globals[G].IsInit ? Stat : Dyn;
    return St;
  }

  BT slotBT(SlotId S) const { return static_cast<BT>(Scratch[S]); }
  void setSlotBT(SlotId S, BT V) { Scratch[S] = V; }
  BT globalBT(uint32_t G) const { return static_cast<BT>(GlobalScratch[G]); }
  void setGlobalBT(uint32_t G, BT V) { GlobalScratch[G] = V; }

  void loadState(const std::vector<uint8_t> &St) {
    for (size_t I = 0; I != CrossSlots.size(); ++I)
      Scratch[CrossSlots[I]] = St[I];
    for (size_t G = 0; G != Globals.size(); ++G)
      GlobalScratch[G] = St[CrossSlots.size() + G];
  }

  std::vector<uint8_t> saveState() const {
    std::vector<uint8_t> St(stateSize());
    for (size_t I = 0; I != CrossSlots.size(); ++I)
      St[I] = Scratch[CrossSlots[I]];
    for (size_t G = 0; G != Globals.size(); ++G)
      St[CrossSlots.size() + G] = GlobalScratch[G];
    return St;
  }

  //===-- transfer --------------------------------------------------------------
  /// Computes the binding time of \p I under the current scratch state and
  /// applies its state effects.
  BT transfer(const Inst &I) {
    BT UsesBT = Undef;
    forEachUse(I, [&](SlotId S, unsigned) { UsesBT = join(UsesBT, slotBT(S)); });

    BT Label = Stat;
    switch (I.Opcode) {
    case Op::Const:
      Label = Stat;
      break;
    case Op::Copy:
    case Op::Bin:
    case Op::Un:
    case Op::Fetch:
      Label = UsesBT == Undef ? Stat : UsesBT;
      break;
    case Op::LoadGlobal:
      Label = globalBT(I.Id) == Undef ? Dyn : globalBT(I.Id);
      break;
    case Op::StoreGlobal:
      Label = UsesBT == Undef ? Stat : UsesBT;
      setGlobalBT(I.Id, Label);
      break;
    case Op::LoadElem:
    case Op::StoreElem:
      Label = DynArrays[I.Id] ? Dyn : Stat;
      break;
    case Op::LoadLocElem:
    case Op::StoreLocElem:
    case Op::InitLocArray:
      Label = DynLocalArrays[I.Id] ? Dyn : Stat;
      break;
    case Op::CallExtern:
      Label = Dyn;
      break;
    case Op::CallBuiltin:
      Label = builtinInfo(static_cast<Builtin>(I.Imm)).Dynamic
                  ? Dyn
                  : (UsesBT == Undef ? Stat : UsesBT);
      break;
    case Op::Jump:
    case Op::Ret:
      Label = Stat;
      break;
    case Op::Branch:
      Label = UsesBT == Undef ? Stat : UsesBT;
      break;
    case Op::SyncSlot:
    case Op::SyncGlobal:
    case Op::SyncArray:
      Label = Dyn;
      break;
    }

    if (I.Dst != NoSlot)
      setSlotBT(I.Dst, Label);
    return Label;
  }

  //===-- fixpoint ---------------------------------------------------------------
  void fixpoint() {
    Entry.assign(F.Blocks.size(), {});
    Scratch.assign(F.NumSlots, Undef);
    GlobalScratch.assign(Globals.size(), Undef);

    Entry[0] = initialEntryState();
    std::deque<uint32_t> Work;
    std::vector<bool> InWork(F.Blocks.size(), false);
    Work.push_back(0);
    InWork[0] = true;

    while (!Work.empty()) {
      uint32_t B = Work.front();
      Work.pop_front();
      InWork[B] = false;
      loadState(Entry[B]);
      for (const Inst &I : F.Blocks[B].Insts)
        transfer(I);
      std::vector<uint8_t> Exit = saveState();

      uint32_t Succs[2];
      unsigned Count = 0;
      F.successors(B, Succs, &Count);
      for (unsigned K = 0; K != Count; ++K) {
        uint32_t Succ = Succs[K];
        std::vector<uint8_t> &SEntry = Entry[Succ];
        bool Changed = false;
        if (SEntry.empty()) {
          SEntry = Exit;
          Changed = true;
        } else {
          for (size_t I = 0; I != SEntry.size(); ++I) {
            uint8_t J = join(static_cast<BT>(SEntry[I]),
                             static_cast<BT>(Exit[I]));
            if (J != SEntry[I]) {
              SEntry[I] = J;
              Changed = true;
            }
          }
        }
        if (Changed && !InWork[Succ]) {
          Work.push_back(Succ);
          InWork[Succ] = true;
        }
      }
    }
  }

  /// After a fixpoint, finds accesses that contradict an rt-static array
  /// class. Returns true (and demotes) if any were found.
  bool demoteViolatingArrays() {
    bool Any = false;
    for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
      if (Entry[B].empty())
        continue; // unreachable
      loadState(Entry[B]);
      for (const Inst &I : F.Blocks[B].Insts) {
        BT UsesBT = Undef;
        forEachUse(I, [&](SlotId S, unsigned) {
          UsesBT = join(UsesBT, slotBT(S));
        });
        if (UsesBT == Dyn) {
          if ((I.Opcode == Op::LoadElem || I.Opcode == Op::StoreElem) &&
              !DynArrays[I.Id]) {
            DynArrays[I.Id] = true;
            Any = true;
          }
          if ((I.Opcode == Op::LoadLocElem || I.Opcode == Op::StoreLocElem ||
               I.Opcode == Op::InitLocArray) &&
              !DynLocalArrays[I.Id]) {
            DynLocalArrays[I.Id] = true;
            Any = true;
          }
        }
        transfer(I);
      }
    }
    return Any;
  }

  //===-- final labeling -----------------------------------------------------------
  void labelInstructions() {
    for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
      if (Entry[B].empty()) {
        // Unreachable block: label everything rt-static; it never runs.
        for (Inst &I : F.Blocks[B].Insts)
          I.Dynamic = false;
        continue;
      }
      loadState(Entry[B]);
      for (Inst &I : F.Blocks[B].Insts) {
        // Record per-operand binding times before the transfer mutates
        // the state.
        uint32_t Mask = 0;
        forEachUse(I, [&](SlotId S, unsigned Pos) {
          if (slotBT(S) != Dyn)
            Mask |= 1u << Pos;
        });
        BT Label = transfer(I);
        I.Dynamic = Label == Dyn;
        I.StaticOperands = I.Dynamic ? Mask : 0;
        if (I.Dynamic)
          ++Stats.DynamicInsts;
        else
          ++Stats.StaticInsts;
      }
    }
  }

  //===-- sync insertion -------------------------------------------------------------
  Inst syncSlotInst(SlotId S) {
    Inst I;
    I.Opcode = Op::SyncSlot;
    I.Dst = S;
    I.Dynamic = true;
    return I;
  }
  Inst syncGlobalInst(uint32_t G) {
    Inst I;
    I.Opcode = Op::SyncGlobal;
    I.Id = G;
    I.Dynamic = true;
    return I;
  }
  Inst syncArrayInst(uint32_t G) {
    Inst I;
    I.Opcode = Op::SyncArray;
    I.Id = G;
    I.Dynamic = true;
    return I;
  }

  void insertSyncs() {
    // 1. Flush every rt-static scalar global and rt-static array before
    //    Ret, so the next step's key (and any external observer) sees the
    //    up-to-date store.
    for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
      if (Entry[B].empty() || F.Blocks[B].terminator().Opcode != Op::Ret)
        continue;
      loadState(Entry[B]);
      std::vector<Inst> &Insts = F.Blocks[B].Insts;
      // Apply transfers up to (not including) the terminator.
      for (size_t K = 0; K + 1 < Insts.size(); ++K)
        transfer(Insts[K]);
      std::vector<Inst> Flushes;
      for (uint32_t G = 0; G != Globals.size(); ++G) {
        if (Globals[G].IsArray) {
          if (!DynArrays[G])
            Flushes.push_back(syncArrayInst(G));
        } else if (globalBT(G) == Stat) {
          Flushes.push_back(syncGlobalInst(G));
        }
      }
      Stats.SyncInsts += static_cast<unsigned>(Flushes.size());
      Insts.insert(Insts.end() - 1, Flushes.begin(), Flushes.end());
    }

    // 2. Split every edge that demotes an rt-static slot or scalar global
    //    to dynamic, materialising the value on the edge.
    struct Split {
      uint32_t Pred;
      unsigned SuccIdx; ///< 0 = Target, 1 = Target2
      std::vector<Inst> Syncs;
    };
    std::vector<Split> Splits;
    for (uint32_t B = 0; B != F.Blocks.size(); ++B) {
      if (Entry[B].empty())
        continue;
      loadState(Entry[B]);
      for (const Inst &I : F.Blocks[B].Insts)
        transfer(I);
      std::vector<uint8_t> Exit = saveState();

      uint32_t Succs[2];
      unsigned Count = 0;
      F.successors(B, Succs, &Count);
      for (unsigned K = 0; K != Count; ++K) {
        const std::vector<uint8_t> &SEntry = Entry[Succs[K]];
        if (SEntry.empty())
          continue;
        std::vector<Inst> Syncs;
        for (size_t I = 0; I != CrossSlots.size(); ++I)
          if (Exit[I] == Stat && SEntry[I] == Dyn)
            Syncs.push_back(syncSlotInst(CrossSlots[I]));
        for (size_t G = 0; G != Globals.size(); ++G)
          if (Exit[CrossSlots.size() + G] == Stat &&
              SEntry[CrossSlots.size() + G] == Dyn)
            Syncs.push_back(syncGlobalInst(static_cast<uint32_t>(G)));
        if (!Syncs.empty())
          Splits.push_back({B, K, std::move(Syncs)});
      }
    }
    for (Split &Sp : Splits) {
      Inst &Term = F.Blocks[Sp.Pred].Insts.back();
      uint32_t &TargetRef = Sp.SuccIdx == 0 ? Term.Target : Term.Target2;
      uint32_t NewBlock = static_cast<uint32_t>(F.Blocks.size());
      Block NB;
      NB.Insts = std::move(Sp.Syncs);
      Stats.SyncInsts += static_cast<unsigned>(NB.Insts.size());
      Inst J;
      J.Opcode = Op::Jump;
      J.Target = TargetRef;
      NB.Insts.push_back(J);
      F.Blocks.push_back(std::move(NB));
      TargetRef = NewBlock;
      ++Stats.SplitEdges;
    }
  }
};

} // namespace

BtaStats facile::annotateStepFunction(LoweredProgram &LP,
                                      std::vector<bool> *DynArrays,
                                      std::vector<bool> *DynLocalArrays) {
  Analyzer A(LP, DynArrays, DynLocalArrays);
  return A.run();
}
