//===- Parser.cpp - Facile parser ------------------------------------------===//

#include "src/facile/Parser.h"

#include "src/facile/Lexer.h"
#include "src/support/StringUtils.h"

#include <cassert>

using namespace facile;
using namespace facile::ast;

namespace {

class Parser {
public:
  Parser(std::vector<FacileTok> Toks, DiagnosticEngine &Diag)
      : Toks(std::move(Toks)), Diag(Diag) {}

  std::optional<Program> run() {
    Program P;
    while (!at(TokKind::Eof)) {
      if (!parseDecl(P))
        recoverToDecl();
    }
    if (Diag.hasErrors())
      return std::nullopt;
    return std::optional<Program>(std::move(P));
  }

private:
  std::vector<FacileTok> Toks;
  DiagnosticEngine &Diag;
  size_t Pos = 0;

  //===-- token plumbing ---------------------------------------------------
  const FacileTok &tok(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(TokKind K) const { return tok().is(K); }
  SourceLoc loc() const { return tok().Loc; }

  FacileTok consume() {
    FacileTok T = tok();
    if (Pos + 1 < Toks.size())
      ++Pos;
    return T;
  }

  bool accept(TokKind K) {
    if (!at(K))
      return false;
    consume();
    return true;
  }

  bool expect(TokKind K, const char *Context) {
    if (accept(K))
      return true;
    Diag.error(loc(), strFormat("expected %s %s, got %s", tokKindName(K),
                                Context, tokKindName(tok().Kind)));
    return false;
  }

  /// Skips ahead to the start of the next top-level declaration.
  void recoverToDecl() {
    int Depth = 0;
    while (!at(TokKind::Eof)) {
      TokKind K = tok().Kind;
      if (Depth == 0 &&
          (K == TokKind::KwToken || K == TokKind::KwPat ||
           K == TokKind::KwSem || K == TokKind::KwVal ||
           K == TokKind::KwInit || K == TokKind::KwExtern ||
           K == TokKind::KwFun))
        return;
      if (K == TokKind::LBrace)
        ++Depth;
      else if (K == TokKind::RBrace && Depth > 0)
        --Depth;
      consume();
    }
  }

  bool expectIdent(std::string *Name, const char *Context) {
    if (!at(TokKind::Identifier)) {
      Diag.error(loc(), strFormat("expected identifier %s, got %s", Context,
                                  tokKindName(tok().Kind)));
      return false;
    }
    *Name = consume().Text;
    return true;
  }

  bool expectInt(int64_t *Value, const char *Context) {
    if (!at(TokKind::IntLiteral)) {
      Diag.error(loc(), strFormat("expected integer %s, got %s", Context,
                                  tokKindName(tok().Kind)));
      return false;
    }
    *Value = consume().IntValue;
    return true;
  }

  //===-- declarations -----------------------------------------------------
  bool parseDecl(Program &P) {
    switch (tok().Kind) {
    case TokKind::KwToken:
      return parseTokenDecl(P);
    case TokKind::KwPat:
      return parsePatDecl(P);
    case TokKind::KwSem:
      return parseSemDecl(P);
    case TokKind::KwVal:
    case TokKind::KwInit:
      return parseGlobalDecl(P);
    case TokKind::KwExtern:
      return parseExternDecl(P);
    case TokKind::KwFun:
      return parseFunDecl(P);
    default:
      Diag.error(loc(), strFormat("expected a declaration, got %s",
                                  tokKindName(tok().Kind)));
      consume();
      return false;
    }
  }

  bool parseTokenDecl(Program &P) {
    TokenDecl D;
    D.Loc = loc();
    consume(); // 'token'
    if (!expectIdent(&D.Name, "after 'token'") ||
        !expect(TokKind::LBracket, "after token name"))
      return false;
    int64_t Width = 0;
    if (!expectInt(&Width, "token width") ||
        !expect(TokKind::RBracket, "after token width"))
      return false;
    D.Width = static_cast<unsigned>(Width);
    if (!expect(TokKind::KwFields, "in token declaration"))
      return false;
    do {
      FieldDecl F;
      F.Loc = loc();
      int64_t Lo = 0, Hi = 0;
      if (!expectIdent(&F.Name, "field name") ||
          !expectInt(&Lo, "field low bit") ||
          !expect(TokKind::Colon, "between field bit numbers") ||
          !expectInt(&Hi, "field high bit"))
        return false;
      // Accept either bit order (the paper writes low:high).
      F.Lo = static_cast<unsigned>(Lo < Hi ? Lo : Hi);
      F.Hi = static_cast<unsigned>(Lo < Hi ? Hi : Lo);
      D.Fields.push_back(std::move(F));
    } while (accept(TokKind::Comma));
    if (!expect(TokKind::Semi, "after token declaration"))
      return false;
    P.Tokens.push_back(std::move(D));
    return true;
  }

  PatExprPtr parsePatOr() {
    PatExprPtr L = parsePatAnd();
    while (L && at(TokKind::PipePipe)) {
      SourceLoc L2 = loc();
      consume();
      PatExprPtr R = parsePatAnd();
      if (!R)
        return nullptr;
      auto N = std::make_unique<PatExpr>(PatExprKind::OrOp, L2);
      N->Lhs = std::move(L);
      N->Rhs = std::move(R);
      L = std::move(N);
    }
    return L;
  }

  PatExprPtr parsePatAnd() {
    PatExprPtr L = parsePatAtom();
    while (L && at(TokKind::AmpAmp)) {
      SourceLoc L2 = loc();
      consume();
      PatExprPtr R = parsePatAtom();
      if (!R)
        return nullptr;
      auto N = std::make_unique<PatExpr>(PatExprKind::AndOp, L2);
      N->Lhs = std::move(L);
      N->Rhs = std::move(R);
      L = std::move(N);
    }
    return L;
  }

  PatExprPtr parsePatAtom() {
    SourceLoc L = loc();
    if (accept(TokKind::LParen)) {
      PatExprPtr E = parsePatOr();
      if (!E || !expect(TokKind::RParen, "in pattern expression"))
        return nullptr;
      return E;
    }
    if (accept(TokKind::KwTrue))
      return std::make_unique<PatExpr>(PatExprKind::True, L);
    std::string Name;
    if (!expectIdent(&Name, "in pattern expression"))
      return nullptr;
    if (at(TokKind::EqEq) || at(TokKind::NotEq)) {
      bool IsEqual = at(TokKind::EqEq);
      consume();
      int64_t Value = 0;
      if (!expectInt(&Value, "in field comparison"))
        return nullptr;
      auto N = std::make_unique<PatExpr>(PatExprKind::FieldCmp, L);
      N->Name = std::move(Name);
      N->IsEqual = IsEqual;
      N->Value = Value;
      return N;
    }
    auto N = std::make_unique<PatExpr>(PatExprKind::PatRef, L);
    N->Name = std::move(Name);
    return N;
  }

  bool parsePatDecl(Program &P) {
    PatDecl D;
    D.Loc = loc();
    consume(); // 'pat'
    if (!expectIdent(&D.Name, "after 'pat'") ||
        !expect(TokKind::Assign, "in pattern declaration"))
      return false;
    D.Pattern = parsePatOr();
    if (!D.Pattern || !expect(TokKind::Semi, "after pattern declaration"))
      return false;
    P.Patterns.push_back(std::move(D));
    return true;
  }

  bool parseSemDecl(Program &P) {
    SemDecl D;
    D.Loc = loc();
    consume(); // 'sem'
    if (!expectIdent(&D.PatName, "after 'sem'") ||
        !expect(TokKind::LBrace, "to open semantic body"))
      return false;
    if (!parseStmtListUntilRBrace(&D.Body))
      return false;
    accept(TokKind::Semi); // optional trailing ';' as in the paper
    P.Semantics.push_back(std::move(D));
    return true;
  }

  std::optional<Type> parseType() {
    SourceLoc L = loc();
    if (accept(TokKind::KwInt))
      return Type::intTy();
    if (accept(TokKind::KwStream))
      return Type::streamTy();
    if (accept(TokKind::KwArray)) {
      int64_t N = 0;
      if (!expect(TokKind::LParen, "after 'array'") ||
          !expectInt(&N, "array size") ||
          !expect(TokKind::RParen, "after array size"))
        return std::nullopt;
      if (N <= 0 || N > (1 << 20)) {
        Diag.error(L, "array size must be between 1 and 2^20");
        return std::nullopt;
      }
      return Type::arrayTy(static_cast<uint32_t>(N));
    }
    Diag.error(L, strFormat("expected a type, got %s", tokKindName(tok().Kind)));
    return std::nullopt;
  }

  bool parseGlobalDecl(Program &P) {
    GlobalDecl D;
    D.Loc = loc();
    if (accept(TokKind::KwInit))
      D.IsInit = true;
    if (!expect(TokKind::KwVal, "in global declaration") ||
        !expectIdent(&D.Name, "global name"))
      return false;
    bool HasType = false;
    if (accept(TokKind::Colon)) {
      auto T = parseType();
      if (!T)
        return false;
      D.DeclType = *T;
      HasType = true;
    }
    if (accept(TokKind::Assign)) {
      // `= array(N){fill}` declares an array global.
      if (at(TokKind::KwArray)) {
        auto T = parseType();
        if (!T)
          return false;
        D.DeclType = *T;
        HasType = true;
        if (!expect(TokKind::LBrace, "array fill value"))
          return false;
        D.ArrayFill = parseExpr();
        if (!D.ArrayFill || !expect(TokKind::RBrace, "after array fill value"))
          return false;
      } else {
        D.Initializer = parseExpr();
        if (!D.Initializer)
          return false;
      }
    }
    if (!HasType && !D.DeclType.isArray())
      D.DeclType = Type::intTy();
    if (!expect(TokKind::Semi, "after global declaration"))
      return false;
    P.Globals.push_back(std::move(D));
    return true;
  }

  bool parseExternDecl(Program &P) {
    ExternDecl D;
    D.Loc = loc();
    consume(); // 'extern'
    if (!expectIdent(&D.Name, "after 'extern'") ||
        !expect(TokKind::LParen, "in extern declaration"))
      return false;
    if (!at(TokKind::RParen)) {
      do {
        auto T = parseType();
        if (!T)
          return false;
        if (!T->isScalar()) {
          Diag.error(D.Loc, "extern parameters must be scalar");
          return false;
        }
        ++D.Arity;
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen, "in extern declaration"))
      return false;
    if (accept(TokKind::Colon)) {
      auto T = parseType();
      if (!T)
        return false;
      if (!T->isScalar()) {
        Diag.error(D.Loc, "extern result must be scalar");
        return false;
      }
      D.HasResult = true;
    }
    if (!expect(TokKind::Semi, "after extern declaration"))
      return false;
    P.Externs.push_back(std::move(D));
    return true;
  }

  bool parseFunDecl(Program &P) {
    FunDecl D;
    D.Loc = loc();
    consume(); // 'fun'
    if (!expectIdent(&D.Name, "after 'fun'") ||
        !expect(TokKind::LParen, "in function declaration"))
      return false;
    if (!at(TokKind::RParen)) {
      do {
        std::string Param;
        if (!expectIdent(&Param, "parameter name"))
          return false;
        // Optional `: type` annotation (scalars only).
        if (accept(TokKind::Colon)) {
          auto T = parseType();
          if (!T)
            return false;
          if (!T->isScalar()) {
            Diag.error(D.Loc, "function parameters must be scalar");
            return false;
          }
        }
        D.Params.push_back(std::move(Param));
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen, "in function declaration") ||
        !expect(TokKind::LBrace, "to open function body"))
      return false;
    if (!parseStmtListUntilRBrace(&D.Body))
      return false;
    P.Functions.push_back(std::move(D));
    return true;
  }

  //===-- statements --------------------------------------------------------
  bool parseStmtListUntilRBrace(std::vector<StmtPtr> *Out) {
    while (!at(TokKind::RBrace)) {
      if (at(TokKind::Eof)) {
        Diag.error(loc(), "unexpected end of input inside block");
        return false;
      }
      StmtPtr S = parseStmt();
      if (!S)
        return false;
      Out->push_back(std::move(S));
    }
    consume(); // '}'
    return true;
  }

  StmtPtr parseStmt() {
    SourceLoc L = loc();
    switch (tok().Kind) {
    case TokKind::LBrace: {
      consume();
      auto S = std::make_unique<Stmt>(StmtKind::Block, L);
      if (!parseStmtListUntilRBrace(&S->Body))
        return nullptr;
      return S;
    }
    case TokKind::KwVal: {
      consume();
      auto S = std::make_unique<Stmt>(StmtKind::ValDecl, L);
      if (!expectIdent(&S->Name, "local name"))
        return nullptr;
      S->DeclType = Type::intTy();
      if (accept(TokKind::Colon)) {
        auto T = parseType();
        if (!T)
          return nullptr;
        S->DeclType = *T;
      }
      if (accept(TokKind::Assign)) {
        if (at(TokKind::KwArray)) {
          auto T = parseType();
          if (!T)
            return nullptr;
          S->DeclType = *T;
          if (!expect(TokKind::LBrace, "array fill value"))
            return nullptr;
          S->Value = parseExpr();
          if (!S->Value || !expect(TokKind::RBrace, "after array fill value"))
            return nullptr;
        } else {
          S->Value = parseExpr();
          if (!S->Value)
            return nullptr;
        }
      }
      if (!expect(TokKind::Semi, "after local declaration"))
        return nullptr;
      return S;
    }
    case TokKind::KwIf: {
      consume();
      auto S = std::make_unique<Stmt>(StmtKind::If, L);
      if (!expect(TokKind::LParen, "after 'if'"))
        return nullptr;
      S->Value = parseExpr();
      if (!S->Value || !expect(TokKind::RParen, "after if condition"))
        return nullptr;
      S->Then = parseStmt();
      if (!S->Then)
        return nullptr;
      if (accept(TokKind::KwElse)) {
        S->Else = parseStmt();
        if (!S->Else)
          return nullptr;
      }
      return S;
    }
    case TokKind::KwWhile: {
      consume();
      auto S = std::make_unique<Stmt>(StmtKind::While, L);
      if (!expect(TokKind::LParen, "after 'while'"))
        return nullptr;
      S->Value = parseExpr();
      if (!S->Value || !expect(TokKind::RParen, "after while condition"))
        return nullptr;
      S->Then = parseStmt();
      if (!S->Then)
        return nullptr;
      return S;
    }
    case TokKind::KwSwitch:
      return parseSwitch();
    case TokKind::KwReturn: {
      consume();
      auto S = std::make_unique<Stmt>(StmtKind::Return, L);
      if (!at(TokKind::Semi)) {
        S->Value = parseExpr();
        if (!S->Value)
          return nullptr;
      }
      if (!expect(TokKind::Semi, "after return"))
        return nullptr;
      return S;
    }
    case TokKind::KwBreak: {
      consume();
      auto S = std::make_unique<Stmt>(StmtKind::Break, L);
      if (!expect(TokKind::Semi, "after 'break'"))
        return nullptr;
      return S;
    }
    default:
      return parseExprOrAssign();
    }
  }

  StmtPtr parseSwitch() {
    SourceLoc L = loc();
    consume(); // 'switch'
    auto S = std::make_unique<Stmt>(StmtKind::Switch, L);
    if (!expect(TokKind::LParen, "after 'switch'"))
      return nullptr;
    S->Value = parseExpr();
    if (!S->Value || !expect(TokKind::RParen, "after switch operand") ||
        !expect(TokKind::LBrace, "to open switch body"))
      return nullptr;
    while (!at(TokKind::RBrace)) {
      SwitchCase Case;
      Case.Loc = loc();
      if (accept(TokKind::KwPat)) {
        if (!expectIdent(&Case.PatName, "pattern name in case"))
          return nullptr;
      } else if (accept(TokKind::KwDefault)) {
        // PatName stays empty.
      } else {
        Diag.error(loc(), strFormat("expected 'pat' or 'default' case, got %s",
                                    tokKindName(tok().Kind)));
        return nullptr;
      }
      if (!expect(TokKind::Colon, "after case label"))
        return nullptr;
      while (!at(TokKind::RBrace) && !at(TokKind::KwPat) &&
             !at(TokKind::KwDefault)) {
        if (at(TokKind::Eof)) {
          Diag.error(loc(), "unexpected end of input inside switch");
          return nullptr;
        }
        StmtPtr Body = parseStmt();
        if (!Body)
          return nullptr;
        Case.Body.push_back(std::move(Body));
      }
      S->Cases.push_back(std::move(Case));
    }
    consume(); // '}'
    return S;
  }

  StmtPtr parseExprOrAssign() {
    SourceLoc L = loc();
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    if (accept(TokKind::Assign)) {
      ExprPtr Rhs = parseExpr();
      if (!Rhs || !expect(TokKind::Semi, "after assignment"))
        return nullptr;
      if (E->Kind == ExprKind::Name) {
        auto S = std::make_unique<Stmt>(StmtKind::Assign, L);
        S->Name = E->Name;
        S->Value = std::move(Rhs);
        return S;
      }
      if (E->Kind == ExprKind::Index) {
        auto S = std::make_unique<Stmt>(StmtKind::AssignIndex, L);
        S->Name = E->Name;
        S->Index = std::move(E->Lhs);
        S->Value = std::move(Rhs);
        return S;
      }
      Diag.error(L, "assignment target must be a variable or array element");
      return nullptr;
    }
    if (!expect(TokKind::Semi, "after expression statement"))
      return nullptr;
    auto S = std::make_unique<Stmt>(StmtKind::ExprStmt, L);
    S->Value = std::move(E);
    return S;
  }

  //===-- expressions -------------------------------------------------------
  /// Binding powers for precedence climbing; higher binds tighter.
  static int precedence(TokKind K) {
    switch (K) {
    case TokKind::PipePipe:
      return 1;
    case TokKind::AmpAmp:
      return 2;
    case TokKind::Pipe:
      return 3;
    case TokKind::Caret:
      return 4;
    case TokKind::Amp:
      return 5;
    case TokKind::EqEq:
    case TokKind::NotEq:
      return 6;
    case TokKind::Less:
    case TokKind::LessEq:
    case TokKind::Greater:
    case TokKind::GreaterEq:
      return 7;
    case TokKind::Shl:
    case TokKind::Shr:
      return 8;
    case TokKind::Plus:
    case TokKind::Minus:
      return 9;
    case TokKind::Star:
    case TokKind::Slash:
    case TokKind::Percent:
      return 10;
    default:
      return 0;
    }
  }

  static BinOp binOpFor(TokKind K) {
    switch (K) {
    case TokKind::PipePipe:
      return BinOp::LogOr;
    case TokKind::AmpAmp:
      return BinOp::LogAnd;
    case TokKind::Pipe:
      return BinOp::Or;
    case TokKind::Caret:
      return BinOp::Xor;
    case TokKind::Amp:
      return BinOp::And;
    case TokKind::EqEq:
      return BinOp::Eq;
    case TokKind::NotEq:
      return BinOp::Ne;
    case TokKind::Less:
      return BinOp::Lt;
    case TokKind::LessEq:
      return BinOp::Le;
    case TokKind::Greater:
      return BinOp::Gt;
    case TokKind::GreaterEq:
      return BinOp::Ge;
    case TokKind::Shl:
      return BinOp::Shl;
    case TokKind::Shr:
      return BinOp::Shr;
    case TokKind::Plus:
      return BinOp::Add;
    case TokKind::Minus:
      return BinOp::Sub;
    case TokKind::Star:
      return BinOp::Mul;
    case TokKind::Slash:
      return BinOp::Div;
    case TokKind::Percent:
      return BinOp::Rem;
    default:
      assert(false && "not a binary operator token");
      return BinOp::Add;
    }
  }

  ExprPtr parseExpr() { return parseBinary(1); }

  ExprPtr parseBinary(int MinPrec) {
    ExprPtr L = parseUnary();
    if (!L)
      return nullptr;
    for (;;) {
      int Prec = precedence(tok().Kind);
      if (Prec < MinPrec || Prec == 0)
        return L;
      TokKind OpTok = tok().Kind;
      SourceLoc OpLoc = loc();
      consume();
      ExprPtr R = parseBinary(Prec + 1);
      if (!R)
        return nullptr;
      auto N = std::make_unique<Expr>(ExprKind::Binary, OpLoc);
      N->BOp = binOpFor(OpTok);
      N->Lhs = std::move(L);
      N->Rhs = std::move(R);
      L = std::move(N);
    }
  }

  ExprPtr parseUnary() {
    SourceLoc L = loc();
    if (accept(TokKind::Minus)) {
      ExprPtr E = parseUnary();
      if (!E)
        return nullptr;
      auto N = std::make_unique<Expr>(ExprKind::Unary, L);
      N->UOp = UnOp::Neg;
      N->Lhs = std::move(E);
      return N;
    }
    if (accept(TokKind::Bang)) {
      ExprPtr E = parseUnary();
      if (!E)
        return nullptr;
      auto N = std::make_unique<Expr>(ExprKind::Unary, L);
      N->UOp = UnOp::Not;
      N->Lhs = std::move(E);
      return N;
    }
    if (accept(TokKind::Tilde)) {
      ExprPtr E = parseUnary();
      if (!E)
        return nullptr;
      auto N = std::make_unique<Expr>(ExprKind::Unary, L);
      N->UOp = UnOp::BitNot;
      N->Lhs = std::move(E);
      return N;
    }
    return parsePostfix();
  }

  bool parseArgs(std::vector<ExprPtr> *Args) {
    if (!expect(TokKind::LParen, "to open argument list"))
      return false;
    if (!at(TokKind::RParen)) {
      do {
        ExprPtr A = parseExpr();
        if (!A)
          return false;
        Args->push_back(std::move(A));
      } while (accept(TokKind::Comma));
    }
    return expect(TokKind::RParen, "to close argument list");
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    if (!E)
      return nullptr;
    for (;;) {
      SourceLoc L = loc();
      if (at(TokKind::LParen)) {
        if (E->Kind != ExprKind::Name) {
          Diag.error(L, "only named functions can be called");
          return nullptr;
        }
        auto N = std::make_unique<Expr>(ExprKind::Call, E->Loc);
        N->Name = E->Name;
        if (!parseArgs(&N->Args))
          return nullptr;
        E = std::move(N);
        continue;
      }
      if (accept(TokKind::LBracket)) {
        if (E->Kind != ExprKind::Name) {
          Diag.error(L, "only named arrays can be indexed");
          return nullptr;
        }
        auto N = std::make_unique<Expr>(ExprKind::Index, E->Loc);
        N->Name = E->Name;
        N->Lhs = parseExpr();
        if (!N->Lhs || !expect(TokKind::RBracket, "after array index"))
          return nullptr;
        E = std::move(N);
        continue;
      }
      if (accept(TokKind::Question)) {
        auto N = std::make_unique<Expr>(ExprKind::Attribute, L);
        if (!expectIdent(&N->Name, "attribute name after '?'"))
          return nullptr;
        N->Lhs = std::move(E);
        if (!parseArgs(&N->Args))
          return nullptr;
        E = std::move(N);
        continue;
      }
      return E;
    }
  }

  ExprPtr parsePrimary() {
    SourceLoc L = loc();
    if (at(TokKind::IntLiteral)) {
      auto N = std::make_unique<Expr>(ExprKind::IntLit, L);
      N->IntValue = consume().IntValue;
      return N;
    }
    if (accept(TokKind::KwTrue)) {
      auto N = std::make_unique<Expr>(ExprKind::IntLit, L);
      N->IntValue = 1;
      return N;
    }
    if (accept(TokKind::KwFalse)) {
      auto N = std::make_unique<Expr>(ExprKind::IntLit, L);
      N->IntValue = 0;
      return N;
    }
    if (at(TokKind::Identifier)) {
      auto N = std::make_unique<Expr>(ExprKind::Name, L);
      N->Name = consume().Text;
      return N;
    }
    if (accept(TokKind::LParen)) {
      ExprPtr E = parseExpr();
      if (!E || !expect(TokKind::RParen, "to close parenthesised expression"))
        return nullptr;
      return E;
    }
    Diag.error(L, strFormat("expected an expression, got %s",
                            tokKindName(tok().Kind)));
    return nullptr;
  }
};

} // namespace

std::optional<Program> facile::parseFacile(std::string_view Source,
                                           DiagnosticEngine &Diag) {
  std::vector<FacileTok> Toks = lexFacile(Source, Diag);
  if (Diag.hasErrors())
    return std::nullopt;
  Parser P(std::move(Toks), Diag);
  return P.run();
}
