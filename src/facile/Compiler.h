//===- Compiler.h - Facile compiler driver ----------------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the Facile compiler: source text in, a fully
/// analysed CompiledProgram out. The pipeline is
///
///   lex/parse -> sema -> lower (full inlining) -> binding-time analysis
///   (+ sync insertion) -> action extraction
///
/// The result is consumed by the fast-forwarding runtime (src/runtime).
/// Between lowering and BTA the optimization pipeline (Passes.h) runs,
/// with the IR verifier checking invariants after every pass.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_COMPILER_H
#define FACILE_FACILE_COMPILER_H

#include "src/facile/Actions.h"
#include "src/facile/Bta.h"
#include "src/facile/Lower.h"
#include "src/facile/Passes.h"
#include "src/support/Diagnostic.h"

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace facile {

/// Knobs for compileFacile. Defaults give the full optimizing pipeline.
struct CompileOptions {
  /// Run the optimization passes (Passes.h) between lowering and BTA.
  bool RunPasses = true;
  /// Run the IR verifier after lowering, after every pass, and after BTA.
  bool VerifyIr = true;
  /// Keep a printed copy of the pre-pass IR in
  /// CompiledProgram::IrBeforePasses (for `facilec --dump-ir=before`).
  bool CaptureIrBeforePasses = false;
};

/// A compiled, analysis-annotated Facile simulator ready to run.
struct CompiledProgram {
  ir::StepFunction Step;
  std::vector<ir::GlobalVar> Globals;
  std::vector<ir::ExternFn> Externs;
  std::vector<bool> DynArrays;      ///< per global: dynamic array class
  std::vector<bool> DynLocalArrays; ///< per local array
  ActionTable Actions;
  BtaStats Bta;
  PassPipelineStats Passes;         ///< zeroed when RunPasses was off
  std::string IrBeforePasses;       ///< only with CaptureIrBeforePasses

  std::map<std::string, uint32_t> GlobalIndex;
  std::map<std::string, uint32_t> ExternIndex;

  /// Indices of the `init` globals, in declaration order — the action-cache
  /// key layout.
  std::vector<uint32_t> InitGlobals;

  const ir::GlobalVar *findGlobal(const std::string &Name) const {
    auto It = GlobalIndex.find(Name);
    return It == GlobalIndex.end() ? nullptr : &Globals[It->second];
  }
};

/// Compiles Facile source text. Returns std::nullopt with diagnostics in
/// \p Diag on any front-end error or IR verifier failure.
std::optional<CompiledProgram>
compileFacile(std::string_view Source, DiagnosticEngine &Diag,
              const CompileOptions &Opts = CompileOptions());

/// Convenience: reads \p Path and compiles it. Reports file errors through
/// \p Diag as well.
std::optional<CompiledProgram>
compileFacileFile(const std::string &Path, DiagnosticEngine &Diag,
                  const CompileOptions &Opts = CompileOptions());

} // namespace facile

#endif // FACILE_FACILE_COMPILER_H
