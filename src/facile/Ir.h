//===- Ir.h - Flat register-machine IR for compiled Facile -----*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intermediate representation the Facile compiler lowers programs
/// into. The whole simulator step function (`main` plus everything it
/// calls, fully inlined — legal because recursion is forbidden) becomes one
/// flat control-flow graph of basic blocks over numbered value slots.
///
/// The binding-time analysis (Bta.h) labels each instruction run-time
/// static or dynamic; the action extractor (Actions.h) then groups dynamic
/// instructions into the dynamic basic blocks that the specialized action
/// cache replays (paper §4.2). Where the paper's compiler emits two C
/// programs, this reproduction executes the same annotated IR with two
/// engines (see DESIGN.md §2 for why that substitution is faithful).
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_IR_H
#define FACILE_FACILE_IR_H

#include "src/facile/Ast.h"
#include "src/facile/Builtins.h"
#include "src/support/SourceLoc.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace facile {
namespace ir {

using SlotId = uint32_t;
inline constexpr SlotId NoSlot = std::numeric_limits<SlotId>::max();

enum class Op : uint8_t {
  Const,       ///< Dst = Imm
  Copy,        ///< Dst = slot A
  Bin,         ///< Dst = A <BinKind> B
  Un,          ///< Dst = <UnKind> A   (Imm = bit width for Sext/Zext)
  LoadGlobal,  ///< Dst = global[Id]
  StoreGlobal, ///< global[Id] = A
  LoadElem,    ///< Dst = globalArray[Id][A]
  StoreElem,   ///< globalArray[Id][A] = B
  LoadLocElem, ///< Dst = localArray[Id][A]
  StoreLocElem,///< localArray[Id][A] = B
  InitLocArray,///< fill localArray[Id] with A
  Fetch,       ///< Dst = text word at address A
  CallExtern,  ///< Dst? = extern[Id](Args...)
  CallBuiltin, ///< Dst? = builtin Imm (Args...)
  // Terminators.
  Jump,        ///< goto block Target
  Branch,      ///< if A goto Target else Target2
  Ret,         ///< end of step
  // Compiler-inserted synchronisation (always dynamic): materialise a
  // run-time static value into dynamic state so the fast simulator's view
  // stays consistent (paper §6.3 item 3 — the rt-static -> dynamic flush).
  SyncSlot,    ///< slot Dst = memoized value of slot Dst
  SyncGlobal,  ///< global[Id] = memoized value of global[Id]
  SyncArray,   ///< globalArray[Id][*] = memoized contents
};

enum class UnKind : uint8_t { Neg, Not, BitNot, Sext, Zext };

/// One IR instruction. Field use depends on Op (see the comments above).
struct Inst {
  Op Opcode = Op::Const;
  SlotId Dst = NoSlot;
  SlotId A = NoSlot;
  SlotId B = NoSlot;
  std::vector<SlotId> Args; ///< CallExtern / CallBuiltin arguments
  int64_t Imm = 0;          ///< Const value, Un width, CallBuiltin id
  uint32_t Id = 0;          ///< global / array / extern index
  uint32_t Target = 0;      ///< Jump / Branch-true successor
  uint32_t Target2 = 0;     ///< Branch-false successor
  ast::BinOp BinKind = ast::BinOp::Add;
  UnKind UnOp = UnKind::Neg;
  SourceLoc Loc;

  /// \name Binding-time analysis results (filled by annotateStepFunction).
  /// @{
  /// True when the instruction depends on dynamic data and must execute
  /// during fast replay; rt-static instructions run in the slow simulator
  /// only (paper §4.1).
  bool Dynamic = false;
  /// For dynamic instructions: bitmask of operand positions whose value is
  /// run-time static and therefore memoized as placeholder data (paper
  /// §4.2's `s` placeholders). Bit 0 = A, bit 1 = B, bit 2+i = Args[i].
  uint32_t StaticOperands = 0;
  /// @}

  bool isTerminator() const {
    return Opcode == Op::Jump || Opcode == Op::Branch || Opcode == Op::Ret;
  }
};

struct Block {
  std::vector<Inst> Insts; ///< non-empty; last instruction is the terminator

  const Inst &terminator() const { return Insts.back(); }
};

/// Metadata for one local (per-step) array.
struct LocalArray {
  uint32_t Size = 0;
};

/// The lowered step function: one CFG, entry at block 0.
struct StepFunction {
  std::vector<Block> Blocks;
  uint32_t NumSlots = 0;
  std::vector<LocalArray> LocalArrays;

  /// Successor block ids of \p B.
  void successors(uint32_t B, uint32_t Out[2], unsigned *Count) const {
    const Inst &T = Blocks[B].terminator();
    *Count = 0;
    if (T.Opcode == Op::Jump) {
      Out[(*Count)++] = T.Target;
    } else if (T.Opcode == Op::Branch) {
      Out[(*Count)++] = T.Target;
      Out[(*Count)++] = T.Target2;
    }
  }
};

/// Global-variable metadata carried alongside the IR so the runtime is
/// independent of the AST.
struct GlobalVar {
  std::string Name;
  bool IsArray = false;
  uint32_t Size = 1;      ///< element count (1 for scalars)
  bool IsInit = false;    ///< part of the action-cache key
  int64_t InitValue = 0;  ///< initial scalar value / array fill
};

struct ExternFn {
  std::string Name;
  unsigned Arity = 0;
  bool HasResult = false;
};

/// Renders the step function as text ("slot5 = bin Add slot3, slot4") for
/// tests and debugging.
std::string printStepFunction(const StepFunction &F);

/// Evaluates a binary operator with Facile semantics (wrapping 64-bit
/// arithmetic, division by zero yields 0, logical shift right). The single
/// source of truth shared by the constant folder and both execution
/// engines, so folding can never diverge from run-time behaviour.
inline int64_t evalBin(ast::BinOp O, int64_t A, int64_t B) {
  // Wrapping ops go through uint64_t: signed overflow is undefined in C++
  // but defined (two's-complement wrap) in Facile.
  uint64_t UA = static_cast<uint64_t>(A);
  uint64_t UB = static_cast<uint64_t>(B);
  switch (O) {
  case ast::BinOp::Add:
    return static_cast<int64_t>(UA + UB);
  case ast::BinOp::Sub:
    return static_cast<int64_t>(UA - UB);
  case ast::BinOp::Mul:
    return static_cast<int64_t>(UA * UB);
  case ast::BinOp::Div:
    // INT64_MIN / -1 also traps on x86; define it as wrapping negation.
    if (B == 0)
      return 0;
    if (B == -1)
      return static_cast<int64_t>(0 - UA);
    return A / B;
  case ast::BinOp::Rem:
    if (B == 0)
      return A;
    if (B == -1)
      return 0;
    return A % B;
  case ast::BinOp::And:
    return A & B;
  case ast::BinOp::Or:
    return A | B;
  case ast::BinOp::Xor:
    return A ^ B;
  case ast::BinOp::Shl:
    return static_cast<int64_t>(UA << (UB & 63));
  case ast::BinOp::Shr:
    // Logical shift right, matching the Facile language definition.
    return static_cast<int64_t>(static_cast<uint64_t>(A) >> (B & 63));
  case ast::BinOp::Lt:
    return A < B;
  case ast::BinOp::Le:
    return A <= B;
  case ast::BinOp::Gt:
    return A > B;
  case ast::BinOp::Ge:
    return A >= B;
  case ast::BinOp::Eq:
    return A == B;
  case ast::BinOp::Ne:
    return A != B;
  case ast::BinOp::LogAnd:
    return (A != 0) & (B != 0);
  case ast::BinOp::LogOr:
    return (A != 0) | (B != 0);
  }
  return 0;
}

/// Evaluates a unary operator (Imm = bit width for Sext/Zext).
inline int64_t evalUn(UnKind K, int64_t A, int64_t Width) {
  switch (K) {
  case UnKind::Neg:
    return static_cast<int64_t>(0 - static_cast<uint64_t>(A)); // wraps

  case UnKind::Not:
    return A == 0 ? 1 : 0;
  case UnKind::BitNot:
    return ~A;
  case UnKind::Sext: {
    if (Width >= 64)
      return A;
    uint64_t Mask = (1ull << Width) - 1;
    uint64_t V = static_cast<uint64_t>(A) & Mask;
    uint64_t Sign = 1ull << (Width - 1);
    return static_cast<int64_t>((V ^ Sign) - Sign);
  }
  case UnKind::Zext: {
    if (Width >= 64)
      return A;
    return static_cast<int64_t>(static_cast<uint64_t>(A) &
                                ((1ull << Width) - 1));
  }
  }
  return 0;
}

} // namespace ir
} // namespace facile

#endif // FACILE_FACILE_IR_H
