//===- CEmitter.h - C source backend for compiled Facile -------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a compiled Facile program as the two C simulators the paper's
/// compiler generates (§4.3, Figures 9 and 10): `fast_main`, a loop over a
/// switch on action numbers executing only dynamic code with memoized
/// placeholder reads, and `slow_main`, the complete simulator with
/// `memoize_*` recording calls and `recover`-guarded dynamic statements.
///
/// The execution engines in src/runtime interpret the annotated IR
/// directly (see DESIGN.md §2 for why that substitution is faithful);
/// this backend exists so the generated-code structure the paper shows is
/// inspectable and testable, and as the starting point for an
/// ahead-of-time build mode.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_CEMITTER_H
#define FACILE_FACILE_CEMITTER_H

#include "src/facile/Compiler.h"

#include <string>

namespace facile {

/// Emits the fast/residual simulator (paper Figure 9) as C source.
std::string emitFastSimulatorC(const CompiledProgram &P);

/// Emits the slow/complete simulator (paper Figure 10) as C source.
std::string emitSlowSimulatorC(const CompiledProgram &P);

} // namespace facile

#endif // FACILE_FACILE_CEMITTER_H
