//===- Parser.h - Facile parser ---------------------------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_PARSER_H
#define FACILE_FACILE_PARSER_H

#include "src/facile/Ast.h"
#include "src/support/Diagnostic.h"

#include <optional>
#include <string_view>

namespace facile {

/// Parses a Facile source buffer into an AST. Returns std::nullopt when any
/// syntax error was reported to \p Diag. The parser recovers at declaration
/// boundaries so several errors can be reported in one pass.
std::optional<ast::Program> parseFacile(std::string_view Source,
                                        DiagnosticEngine &Diag);

} // namespace facile

#endif // FACILE_FACILE_PARSER_H
