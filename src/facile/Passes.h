//===- Passes.h - IR optimization passes over the lowered CFG ---*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's middle end: a small pipeline of classic scalar and CFG
/// optimizations run over the lowered step function *before* binding-time
/// analysis. Lowering with full inlining (Lower.cpp) produces long chains
/// of Const / Copy temporaries and one basic block per structural seam
/// (call joins, case tests, if/while edges); the passes collapse those so
/// that BTA, action extraction and the packed execution plan
/// (src/runtime/ExecPlan.h) all see a smaller, tighter CFG — fewer action
/// nodes recorded per step and fewer instructions replayed per action.
///
/// Passes (run round-robin until a fixpoint by runPassPipeline):
///
///  - foldConstants: block-local constant propagation through Const, Copy,
///    Bin and Un, plus folding of Branch-on-constant into Jump.
///  - propagateCopies: block-local copy propagation into every operand
///    position (A, B, call arguments and branch conditions).
///  - eliminateDeadCode: global slot liveness (backward fixpoint over the
///    CFG); pure instructions whose destination is dead are dropped.
///  - simplifyCfg: jump threading through empty blocks, merging of
///    single-predecessor / single-successor block pairs, and removal (with
///    id compaction) of unreachable blocks.
///
/// The IR verifier checks the structural invariants documented in
/// docs/INTERNALS.md after every pass; a verifier failure aborts
/// compilation with a diagnostic naming the offending pass.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_PASSES_H
#define FACILE_FACILE_PASSES_H

#include "src/facile/Lower.h"

#include <string>

namespace facile {

/// Cumulative counters for one pipeline run, reported via
/// `facilec --pass-stats` and the `"passes"` block of
/// SimHarness::statsJson().
struct PassPipelineStats {
  unsigned InstsBefore = 0;
  unsigned InstsAfter = 0;
  unsigned BlocksBefore = 0;
  unsigned BlocksAfter = 0;
  unsigned Rounds = 0;            ///< fixpoint iterations executed
  unsigned Folded = 0;            ///< instructions rewritten to Const
  unsigned BranchesFolded = 0;    ///< Branch-on-constant -> Jump
  unsigned CopiesPropagated = 0;  ///< operand uses redirected past a Copy
  unsigned DeadRemoved = 0;       ///< pure instructions with a dead Dst
  unsigned JumpsThreaded = 0;     ///< edges retargeted through empty blocks
  unsigned BlocksMerged = 0;      ///< single-pred/single-succ merges
  unsigned BlocksRemoved = 0;     ///< unreachable / emptied blocks dropped
};

/// \name Individual passes
/// Each pass mutates \p F in place, accumulates into \p Stats, and returns
/// the number of changes it made (0 = fixpoint for that pass).
/// @{
unsigned foldConstants(ir::StepFunction &F, PassPipelineStats &Stats);
unsigned propagateCopies(ir::StepFunction &F, PassPipelineStats &Stats);
unsigned eliminateDeadCode(ir::StepFunction &F, PassPipelineStats &Stats);
unsigned simplifyCfg(ir::StepFunction &F, PassPipelineStats &Stats);
/// @}

/// Structural IR verifier. Checks (see docs/INTERNALS.md "Verifier
/// invariants"): non-empty blocks terminated exactly once, exactly one
/// Ret, in-range block targets / slots / global / local-array / extern /
/// builtin ids, builtin and extern arity, and definite slot assignment
/// before use on every path. With \p PostBta it additionally checks that
/// binding-time annotations are internally consistent (Sync* instructions
/// are dynamic; StaticOperands appear only on dynamic instructions;
/// rt-static code never contains externs or dynamic builtins).
///
/// Returns an empty string when the IR is well-formed, else a description
/// of the first violation.
std::string verifyStepFunction(const ir::StepFunction &F,
                               const std::vector<ir::GlobalVar> &Globals,
                               const std::vector<ir::ExternFn> &Externs,
                               bool PostBta = false);

/// Runs the full pipeline over \p LP until a fixpoint (bounded round
/// count), verifying between passes when \p Error is non-null. Returns
/// false (with the failure message in \p *Error) if verification fails;
/// the IR is then in an unspecified state and must not be used.
bool runPassPipeline(LoweredProgram &LP, PassPipelineStats &Stats,
                     std::string *Error);

} // namespace facile

#endif // FACILE_FACILE_PASSES_H
