//===- Lower.cpp - AST to IR lowering with full inlining -------------------===//

#include "src/facile/Lower.h"

#include "src/support/StringUtils.h"

#include <cassert>
#include <map>

using namespace facile;
using namespace facile::ast;
using namespace facile::ir;

namespace {

/// Hard limits that turn inline explosion into a diagnostic instead of an
/// out-of-memory condition.
constexpr size_t MaxInstructions = 4u << 20;
constexpr unsigned MaxInlineDepth = 64;

class Lowerer {
public:
  Lowerer(const Program &P, const SemaResult &S, DiagnosticEngine &Diag)
      : P(P), S(S), Diag(Diag) {}

  std::optional<LoweredProgram> run() {
    buildGlobalTables();

    // Block 0 is the entry; a dedicated single exit block holds Ret so the
    // flush pass has exactly one place to synchronise globals.
    CurBlock = newBlock();
    ExitBlock = newBlock();
    F.Blocks[ExitBlock].Insts.push_back(makeInst(Op::Ret));

    ScopeGuard Root(this);
    lowerBody(S.Main->Body);
    if (Failed)
      return std::nullopt;
    terminate(jumpTo(ExitBlock));

    LoweredProgram Out;
    Out.Step = std::move(F);
    Out.Globals = std::move(Globals);
    Out.Externs = std::move(Externs);
    return std::optional<LoweredProgram>(std::move(Out));
  }

private:
  const Program &P;
  const SemaResult &S;
  DiagnosticEngine &Diag;

  StepFunction F;
  std::vector<GlobalVar> Globals;
  std::vector<ExternFn> Externs;

  uint32_t CurBlock = 0;
  uint32_t ExitBlock = 0;
  bool Failed = false;
  size_t TotalInsts = 0;
  unsigned InlineDepth = 0;

  /// What a name currently denotes.
  struct Binding {
    enum class Kind { Scalar, LocalArray } K = Kind::Scalar;
    SlotId Slot = NoSlot;
    uint32_t ArrayId = 0;
  };
  std::vector<std::map<std::string, Binding>> Scopes;

  struct ScopeGuard {
    Lowerer *L;
    explicit ScopeGuard(Lowerer *L) : L(L) { L->Scopes.emplace_back(); }
    ~ScopeGuard() { L->Scopes.pop_back(); }
  };

  /// Inline-expansion context: where `return` in the current function goes.
  struct InlineCtx {
    SlotId RetSlot = NoSlot;
    uint32_t JoinBlock = 0;
  };
  std::vector<InlineCtx> InlineStack;

  /// Decode context for the innermost pattern switch / ?exec: the fetched
  /// instruction word and pre-extracted field slots.
  struct DecodeCtx {
    std::map<std::string, SlotId> FieldSlots;
  };
  std::vector<DecodeCtx> DecodeStack;

  std::vector<uint32_t> BreakTargets;

  //===-- table setup --------------------------------------------------------
  void buildGlobalTables() {
    for (const SemaResult::GlobalInfo &G : S.Globals) {
      GlobalVar V;
      V.Name = G.Decl->Name;
      V.IsArray = G.Ty.isArray();
      V.Size = V.IsArray ? G.Ty.ArraySize : 1;
      V.IsInit = G.IsInit;
      V.InitValue = G.InitValue;
      Globals.push_back(std::move(V));
    }
    for (const ExternDecl *E : S.Externs)
      Externs.push_back({E->Name, E->Arity, E->HasResult});
  }

  //===-- emission helpers ----------------------------------------------------
  SlotId newSlot() { return F.NumSlots++; }

  uint32_t newBlock() {
    F.Blocks.emplace_back();
    return static_cast<uint32_t>(F.Blocks.size() - 1);
  }

  Inst makeInst(Op O) {
    Inst I;
    I.Opcode = O;
    return I;
  }

  void overflowCheck(SourceLoc Loc) {
    if (++TotalInsts > MaxInstructions && !Failed) {
      Failed = true;
      Diag.error(Loc, "inlined step function exceeds the instruction limit; "
                      "reduce function duplication");
    }
  }

  Inst &emit(Inst I) {
    overflowCheck(I.Loc);
    Block &B = F.Blocks[CurBlock];
    assert((B.Insts.empty() || !B.Insts.back().isTerminator()) &&
           "emitting into a terminated block");
    B.Insts.push_back(std::move(I));
    return B.Insts.back();
  }

  /// Terminates the current block with \p I and leaves CurBlock dangling
  /// until the caller repoints it.
  void terminate(Inst I) {
    Block &B = F.Blocks[CurBlock];
    if (!B.Insts.empty() && B.Insts.back().isTerminator())
      return; // already terminated (e.g. after a return)
    overflowCheck(I.Loc);
    B.Insts.push_back(std::move(I));
  }

  Inst jumpTo(uint32_t Target) {
    Inst I = makeInst(Op::Jump);
    I.Target = Target;
    return I;
  }

  Inst branchTo(SlotId Cond, uint32_t T, uint32_t E, SourceLoc Loc) {
    Inst I = makeInst(Op::Branch);
    I.A = Cond;
    I.Target = T;
    I.Target2 = E;
    I.Loc = Loc;
    return I;
  }

  SlotId emitConst(int64_t V, SourceLoc Loc) {
    Inst I = makeInst(Op::Const);
    I.Dst = newSlot();
    I.Imm = V;
    I.Loc = Loc;
    return emit(std::move(I)).Dst;
  }

  SlotId emitBin(BinOp O, SlotId A, SlotId B, SourceLoc Loc) {
    Inst I = makeInst(Op::Bin);
    I.Dst = newSlot();
    I.BinKind = O;
    I.A = A;
    I.B = B;
    I.Loc = Loc;
    return emit(std::move(I)).Dst;
  }

  SlotId emitUn(UnKind K, SlotId A, int64_t Width, SourceLoc Loc) {
    Inst I = makeInst(Op::Un);
    I.Dst = newSlot();
    I.UnOp = K;
    I.A = A;
    I.Imm = Width;
    I.Loc = Loc;
    return emit(std::move(I)).Dst;
  }

  void emitCopy(SlotId Dst, SlotId Src, SourceLoc Loc) {
    Inst I = makeInst(Op::Copy);
    I.Dst = Dst;
    I.A = Src;
    I.Loc = Loc;
    emit(std::move(I));
  }

  //===-- name resolution ------------------------------------------------------
  Binding *findBinding(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F2 = It->find(Name);
      if (F2 != It->end())
        return &F2->second;
    }
    return nullptr;
  }

  /// Field lookup within the innermost decode context.
  SlotId findField(const std::string &Name) {
    if (DecodeStack.empty())
      return NoSlot;
    auto It = DecodeStack.back().FieldSlots.find(Name);
    return It == DecodeStack.back().FieldSlots.end() ? NoSlot : It->second;
  }

  //===-- expressions ----------------------------------------------------------
  SlotId toBool(SlotId V, SourceLoc Loc) {
    SlotId Zero = emitConst(0, Loc);
    return emitBin(BinOp::Ne, V, Zero, Loc);
  }

  SlotId lowerExpr(const Expr &E) {
    if (Failed)
      return 0;
    switch (E.Kind) {
    case ExprKind::IntLit:
      return emitConst(E.IntValue, E.Loc);
    case ExprKind::Name: {
      if (Binding *B = findBinding(E.Name)) {
        assert(B->K == Binding::Kind::Scalar && "sema admits scalars only");
        return B->Slot;
      }
      if (SlotId Field = findField(E.Name); Field != NoSlot)
        return Field;
      auto It = S.GlobalIndex.find(E.Name);
      assert(It != S.GlobalIndex.end() && "sema missed an undefined name");
      const SemaResult::GlobalInfo &G = S.Globals[It->second];
      // Never-assigned non-init scalars are compile-time constants. (Init
      // globals are excluded: the host may seed them between steps.)
      if (!G.Ty.isArray() && !G.IsInit && G.NeverAssigned)
        return emitConst(G.InitValue, E.Loc);
      Inst I = makeInst(Op::LoadGlobal);
      I.Dst = newSlot();
      I.Id = It->second;
      I.Loc = E.Loc;
      return emit(std::move(I)).Dst;
    }
    case ExprKind::Unary: {
      SlotId A = lowerExpr(*E.Lhs);
      UnKind K = E.UOp == UnOp::Neg   ? UnKind::Neg
                 : E.UOp == UnOp::Not ? UnKind::Not
                                      : UnKind::BitNot;
      return emitUn(K, A, 0, E.Loc);
    }
    case ExprKind::Binary: {
      SlotId A = lowerExpr(*E.Lhs);
      SlotId B = lowerExpr(*E.Rhs);
      // Logical operators are eager in Facile (documented deviation from C):
      // normalise both sides to 0/1 and combine bitwise.
      if (E.BOp == BinOp::LogAnd)
        return emitBin(BinOp::And, toBool(A, E.Loc), toBool(B, E.Loc), E.Loc);
      if (E.BOp == BinOp::LogOr)
        return emitBin(BinOp::Or, toBool(A, E.Loc), toBool(B, E.Loc), E.Loc);
      return emitBin(E.BOp, A, B, E.Loc);
    }
    case ExprKind::Call:
      return lowerCall(E);
    case ExprKind::Index: {
      SlotId Index = lowerExpr(*E.Lhs);
      if (Binding *B = findBinding(E.Name)) {
        assert(B->K == Binding::Kind::LocalArray && "sema checked arrayness");
        Inst I = makeInst(Op::LoadLocElem);
        I.Dst = newSlot();
        I.Id = B->ArrayId;
        I.A = Index;
        I.Loc = E.Loc;
        return emit(std::move(I)).Dst;
      }
      auto It = S.GlobalIndex.find(E.Name);
      assert(It != S.GlobalIndex.end() && "sema missed an undefined array");
      Inst I = makeInst(Op::LoadElem);
      I.Dst = newSlot();
      I.Id = It->second;
      I.A = Index;
      I.Loc = E.Loc;
      return emit(std::move(I)).Dst;
    }
    case ExprKind::Attribute:
      return lowerAttribute(E);
    }
    return 0;
  }

  SlotId lowerCall(const Expr &E) {
    std::vector<SlotId> Args;
    Args.reserve(E.Args.size());
    for (const ExprPtr &A : E.Args)
      Args.push_back(lowerExpr(*A));

    if (auto It = S.Functions.find(E.Name); It != S.Functions.end())
      return inlineFunction(*It->second, Args, E.Loc);

    if (auto It = S.ExternIndex.find(E.Name); It != S.ExternIndex.end()) {
      const ExternDecl &D = *S.Externs[It->second];
      Inst I = makeInst(Op::CallExtern);
      I.Id = It->second;
      I.Args = std::move(Args);
      I.Loc = E.Loc;
      if (D.HasResult)
        I.Dst = newSlot();
      SlotId Dst = I.Dst;
      emit(std::move(I));
      return Dst == NoSlot ? emitConst(0, E.Loc) : Dst;
    }

    const BuiltinInfo *B = lookupBuiltin(E.Name.c_str());
    assert(B && "sema missed an undefined call");
    Inst I = makeInst(Op::CallBuiltin);
    I.Imm = static_cast<int64_t>(B->B);
    I.Args = std::move(Args);
    I.Loc = E.Loc;
    if (B->HasResult)
      I.Dst = newSlot();
    SlotId Dst = I.Dst;
    emit(std::move(I));
    return Dst == NoSlot ? emitConst(0, E.Loc) : Dst;
  }

  SlotId inlineFunction(const FunDecl &D, const std::vector<SlotId> &Args,
                        SourceLoc Loc) {
    if (InlineDepth >= MaxInlineDepth) {
      if (!Failed) {
        Failed = true;
        Diag.error(Loc, "call nesting exceeds the inline depth limit");
      }
      return 0;
    }
    ++InlineDepth;
    ScopeGuard Scope(this);

    InlineCtx Ctx;
    Ctx.RetSlot = newSlot();
    Ctx.JoinBlock = newBlock();
    // Default return value and by-value parameter copies.
    {
      Inst I = makeInst(Op::Const);
      I.Dst = Ctx.RetSlot;
      I.Imm = 0;
      I.Loc = Loc;
      emit(std::move(I));
    }
    assert(Args.size() == D.Params.size() && "sema checked arity");
    for (size_t I = 0; I != Args.size(); ++I) {
      SlotId Param = newSlot();
      emitCopy(Param, Args[I], Loc);
      Scopes.back().emplace(D.Params[I], Binding{Binding::Kind::Scalar,
                                                 Param, 0});
    }

    InlineStack.push_back(Ctx);
    lowerBody(D.Body);
    InlineStack.pop_back();
    terminate(jumpTo(Ctx.JoinBlock));
    CurBlock = Ctx.JoinBlock;
    --InlineDepth;
    return Ctx.RetSlot;
  }

  SlotId lowerAttribute(const Expr &E) {
    if (E.Name == "sext" || E.Name == "zext") {
      SlotId A = lowerExpr(*E.Lhs);
      return emitUn(E.Name == "sext" ? UnKind::Sext : UnKind::Zext, A,
                    E.Args[0]->IntValue, E.Loc);
    }
    if (E.Name == "fetch") {
      SlotId A = lowerExpr(*E.Lhs);
      Inst I = makeInst(Op::Fetch);
      I.Dst = newSlot();
      I.A = A;
      I.Loc = E.Loc;
      return emit(std::move(I)).Dst;
    }
    assert(E.Name == "exec" && "sema rejected unknown attributes");
    SlotId Addr = lowerExpr(*E.Lhs);
    lowerDispatch(Addr, /*Switch=*/nullptr, E.Loc);
    return emitConst(0, E.Loc);
  }

  //===-- decode / dispatch -----------------------------------------------------
  /// Lowers a pattern predicate over pre-extracted field slots.
  SlotId lowerPatExpr(const PatExpr &PE, SourceLoc Loc) {
    switch (PE.Kind) {
    case PatExprKind::True:
      return emitConst(1, Loc);
    case PatExprKind::FieldCmp: {
      SlotId Field = findField(PE.Name);
      assert(Field != NoSlot && "fields are pre-extracted per decode");
      SlotId C = emitConst(PE.Value, Loc);
      return emitBin(PE.IsEqual ? BinOp::Eq : BinOp::Ne, Field, C, Loc);
    }
    case PatExprKind::PatRef:
      return lowerPatExpr(*S.Patterns.at(PE.Name)->Pattern, Loc);
    case PatExprKind::AndOp: {
      SlotId A = lowerPatExpr(*PE.Lhs, Loc);
      SlotId B = lowerPatExpr(*PE.Rhs, Loc);
      return emitBin(BinOp::And, A, B, Loc);
    }
    case PatExprKind::OrOp: {
      SlotId A = lowerPatExpr(*PE.Lhs, Loc);
      SlotId B = lowerPatExpr(*PE.Rhs, Loc);
      return emitBin(BinOp::Or, A, B, Loc);
    }
    }
    return 0;
  }

  /// Lowers either an explicit pattern switch (\p Switch != null) or a
  /// ?exec dispatch over every pattern with declared semantics.
  void lowerDispatch(SlotId Addr, const Stmt *Switch, SourceLoc Loc) {
    // Fetch the word once and pre-extract every declared field in this
    // block, which dominates all case tests and bodies.
    Inst FetchI = makeInst(Op::Fetch);
    FetchI.Dst = newSlot();
    FetchI.A = Addr;
    FetchI.Loc = Loc;
    SlotId Word = emit(std::move(FetchI)).Dst;

    DecodeStack.emplace_back();
    assert(S.Token && "sema requires a token declaration for dispatch");
    for (const FieldDecl &Fld : S.Token->Fields) {
      SlotId Sh = emitConst(Fld.Lo, Loc);
      SlotId Shifted = emitBin(BinOp::Shr, Word, Sh, Loc);
      uint64_t MaskV = (Fld.Hi - Fld.Lo + 1) >= 64
                           ? ~0ull
                           : ((1ull << (Fld.Hi - Fld.Lo + 1)) - 1);
      SlotId Mask = emitConst(static_cast<int64_t>(MaskV), Loc);
      SlotId Val = emitBin(BinOp::And, Shifted, Mask, Loc);
      DecodeStack.back().FieldSlots.emplace(Fld.Name, Val);
    }

    uint32_t EndBlock = newBlock();

    // Assemble the case list: (pattern, body) in source / declaration order.
    struct Arm {
      const PatDecl *Pat;                    ///< null for default
      const std::vector<StmtPtr> *Body;      ///< null for empty default
    };
    std::vector<Arm> Arms;
    const std::vector<StmtPtr> *DefaultBody = nullptr;
    bool ExecDefaultHalt = false;
    if (Switch) {
      for (const SwitchCase &C : Switch->Cases) {
        if (C.PatName.empty())
          DefaultBody = &C.Body;
        else
          Arms.push_back({S.Patterns.at(C.PatName), &C.Body});
      }
    } else {
      for (const PatDecl *Pat : S.PatternOrder) {
        auto It = S.Semantics.find(Pat->Name);
        if (It != S.Semantics.end())
          Arms.push_back({Pat, &It->second->Body});
      }
      // An undecodable word halts the simulated machine, matching the
      // C++ functional core's treatment of invalid encodings.
      ExecDefaultHalt = true;
    }

    for (const Arm &A : Arms) {
      SlotId Match = lowerPatExpr(*A.Pat->Pattern, Loc);
      uint32_t CaseBlock = newBlock();
      uint32_t NextTest = newBlock();
      terminate(branchTo(Match, CaseBlock, NextTest, Loc));
      CurBlock = CaseBlock;
      {
        ScopeGuard Scope(this);
        lowerBody(*A.Body);
      }
      terminate(jumpTo(EndBlock));
      CurBlock = NextTest;
    }
    // Default arm.
    if (DefaultBody) {
      ScopeGuard Scope(this);
      lowerBody(*DefaultBody);
    } else if (ExecDefaultHalt) {
      Inst I = makeInst(Op::CallBuiltin);
      I.Imm = static_cast<int64_t>(Builtin::SimHalt);
      I.Loc = Loc;
      emit(std::move(I));
    }
    terminate(jumpTo(EndBlock));
    CurBlock = EndBlock;
    DecodeStack.pop_back();
  }

  //===-- statements -------------------------------------------------------------
  void lowerBody(const std::vector<StmtPtr> &Body) {
    for (const StmtPtr &St : Body) {
      if (Failed)
        return;
      lowerStmt(*St);
    }
  }

  void lowerStmt(const Stmt &St) {
    switch (St.Kind) {
    case StmtKind::Block: {
      ScopeGuard Scope(this);
      lowerBody(St.Body);
      return;
    }
    case StmtKind::ValDecl: {
      if (St.DeclType.isArray()) {
        uint32_t Id = static_cast<uint32_t>(F.LocalArrays.size());
        F.LocalArrays.push_back({St.DeclType.ArraySize});
        SlotId Fill =
            St.Value ? lowerExpr(*St.Value) : emitConst(0, St.Loc);
        Inst I = makeInst(Op::InitLocArray);
        I.Id = Id;
        I.A = Fill;
        I.Loc = St.Loc;
        emit(std::move(I));
        Scopes.back().emplace(St.Name,
                              Binding{Binding::Kind::LocalArray, NoSlot, Id});
        return;
      }
      SlotId Slot = newSlot();
      SlotId V = St.Value ? lowerExpr(*St.Value) : emitConst(0, St.Loc);
      emitCopy(Slot, V, St.Loc);
      Scopes.back().emplace(St.Name, Binding{Binding::Kind::Scalar, Slot, 0});
      return;
    }
    case StmtKind::Assign: {
      SlotId V = lowerExpr(*St.Value);
      if (Binding *B = findBinding(St.Name)) {
        emitCopy(B->Slot, V, St.Loc);
        return;
      }
      auto It = S.GlobalIndex.find(St.Name);
      assert(It != S.GlobalIndex.end() && "sema missed assignment target");
      Inst I = makeInst(Op::StoreGlobal);
      I.Id = It->second;
      I.A = V;
      I.Loc = St.Loc;
      emit(std::move(I));
      return;
    }
    case StmtKind::AssignIndex: {
      SlotId Index = lowerExpr(*St.Index);
      SlotId V = lowerExpr(*St.Value);
      if (Binding *B = findBinding(St.Name)) {
        Inst I = makeInst(Op::StoreLocElem);
        I.Id = B->ArrayId;
        I.A = Index;
        I.B = V;
        I.Loc = St.Loc;
        emit(std::move(I));
        return;
      }
      auto It = S.GlobalIndex.find(St.Name);
      assert(It != S.GlobalIndex.end() && "sema missed array target");
      Inst I = makeInst(Op::StoreElem);
      I.Id = It->second;
      I.A = Index;
      I.B = V;
      I.Loc = St.Loc;
      emit(std::move(I));
      return;
    }
    case StmtKind::If: {
      SlotId Cond = lowerExpr(*St.Value);
      uint32_t ThenB = newBlock();
      uint32_t ElseB = St.Else ? newBlock() : 0;
      uint32_t EndB = newBlock();
      terminate(branchTo(Cond, ThenB, St.Else ? ElseB : EndB, St.Loc));
      CurBlock = ThenB;
      lowerStmt(*St.Then);
      terminate(jumpTo(EndB));
      if (St.Else) {
        CurBlock = ElseB;
        lowerStmt(*St.Else);
        terminate(jumpTo(EndB));
      }
      CurBlock = EndB;
      return;
    }
    case StmtKind::While: {
      uint32_t CondB = newBlock();
      uint32_t BodyB = newBlock();
      uint32_t EndB = newBlock();
      terminate(jumpTo(CondB));
      CurBlock = CondB;
      SlotId Cond = lowerExpr(*St.Value);
      terminate(branchTo(Cond, BodyB, EndB, St.Loc));
      CurBlock = BodyB;
      BreakTargets.push_back(EndB);
      lowerStmt(*St.Then);
      BreakTargets.pop_back();
      terminate(jumpTo(CondB));
      CurBlock = EndB;
      return;
    }
    case StmtKind::Switch: {
      SlotId Addr = lowerExpr(*St.Value);
      lowerDispatch(Addr, &St, St.Loc);
      return;
    }
    case StmtKind::Return: {
      if (InlineStack.empty()) {
        // Returning from main ends the step; the value (if any) is ignored.
        if (St.Value)
          lowerExpr(*St.Value);
        terminate(jumpTo(ExitBlock));
      } else {
        if (St.Value) {
          SlotId V = lowerExpr(*St.Value);
          emitCopy(InlineStack.back().RetSlot, V, St.Loc);
        }
        terminate(jumpTo(InlineStack.back().JoinBlock));
      }
      // Code after a return in the same block is unreachable; give it a
      // fresh block so emission stays well-formed (it will be dead).
      CurBlock = newBlock();
      return;
    }
    case StmtKind::Break:
      assert(!BreakTargets.empty() && "sema checked break placement");
      terminate(jumpTo(BreakTargets.back()));
      CurBlock = newBlock();
      return;
    case StmtKind::ExprStmt:
      lowerExpr(*St.Value);
      return;
    }
  }
};

} // namespace

std::optional<LoweredProgram> facile::lowerFacile(const Program &P,
                                                  const SemaResult &S,
                                                  DiagnosticEngine &Diag) {
  Lowerer L(P, S, Diag);
  return L.run();
}
