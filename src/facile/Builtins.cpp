//===- Builtins.cpp - Facile built-in functions ----------------------------===//

#include "src/facile/Builtins.h"

#include <cassert>
#include <cstring>

using namespace facile;

namespace {

constexpr BuiltinInfo Table[] = {
    {Builtin::MemLd, "mem_ld", 1, true, true},
    {Builtin::MemLd8, "mem_ld8", 1, true, true},
    {Builtin::MemSt, "mem_st", 2, false, true},
    {Builtin::MemSt8, "mem_st8", 2, false, true},
    {Builtin::SimHalt, "sim_halt", 0, false, true},
    {Builtin::Retire, "retire", 1, false, true},
    {Builtin::Cycles, "cycles", 1, false, true},
    {Builtin::TextStart, "text_start", 0, true, false},
    {Builtin::TextEnd, "text_end", 0, true, false},
    {Builtin::Print, "print", 1, false, true},
};

} // namespace

const BuiltinInfo *facile::lookupBuiltin(const char *Name) {
  for (const BuiltinInfo &I : Table)
    if (std::strcmp(I.Name, Name) == 0)
      return &I;
  return nullptr;
}

unsigned facile::numBuiltins() { return sizeof(Table) / sizeof(Table[0]); }

const BuiltinInfo &facile::builtinInfo(Builtin B) {
  for (const BuiltinInfo &I : Table)
    if (I.B == B)
      return I;
  assert(false && "unknown builtin");
  return Table[0];
}
