//===- Lower.h - AST to IR lowering with full inlining ----------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a checked Facile program into one flat StepFunction CFG. Every
/// call to a Facile function is inlined at its call site (recursion is
/// rejected by Sema, so this terminates); this realises the paper's
/// maximally polyvariant division — each call site gets its own copy of the
/// callee, so the binding-time analysis never merges divisions across call
/// sites (paper §4.1), and dynamic temporaries live in one flat slot file
/// rather than a stack (paper §3.2).
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_FACILE_LOWER_H
#define FACILE_FACILE_LOWER_H

#include "src/facile/Ir.h"
#include "src/facile/Sema.h"
#include "src/support/Diagnostic.h"

#include <optional>

namespace facile {

/// Everything the runtime needs: the lowered CFG plus global/extern tables.
struct LoweredProgram {
  ir::StepFunction Step;
  std::vector<ir::GlobalVar> Globals;
  std::vector<ir::ExternFn> Externs;
};

/// Lowers \p P (already analyzed as \p S). Returns std::nullopt if an
/// implementation limit is exceeded (inline explosion); those are reported
/// to \p Diag.
std::optional<LoweredProgram> lowerFacile(const ast::Program &P,
                                          const SemaResult &S,
                                          DiagnosticEngine &Diag);

} // namespace facile

#endif // FACILE_FACILE_LOWER_H
