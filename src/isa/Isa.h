//===- Isa.h - The target RISC instruction set ------------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 32-bit fixed-width RISC target ISA simulated throughout this project.
/// It plays the role of SPARC-V8/V9 in the paper: simple enough to describe
/// with Facile token/field/pattern declarations, rich enough (ALU ops,
/// loads/stores, conditional branches, calls, multiply/divide) to carry
/// SPEC95-shaped synthetic workloads.
///
/// Encoding (one 32-bit token; field ranges are inclusive bit numbers,
/// bit 0 = LSB):
///
///   op    31:26   primary opcode
///   rd    25:21   destination register
///   rs1   20:16   first source register
///   rs2   15:11   second source register
///   funct 10:0    ALU sub-opcode (R-type)
///   imm   15:0    16-bit immediate (I-type / branch offset in words)
///   off26 25:0    26-bit jump offset in words (J-type)
///
/// Branches put rs1 in the rd slot and rs2 in the rs1 slot, mirroring how
/// SPARC reuses instruction fields per format. Register r0 reads as zero.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_ISA_ISA_H
#define FACILE_ISA_ISA_H

#include <cstdint>
#include <string>

namespace facile {
namespace isa {

/// Number of architectural integer registers. r0 is hard-wired to zero.
inline constexpr unsigned NumRegs = 32;

/// Revision of the ISA encoding/semantics. Mixed into snapshot
/// compatibility keys: bump whenever a change would make previously
/// recorded action caches or checkpoints semantically stale even though
/// the compiled program and image bytes look unchanged.
inline constexpr uint32_t IsaRevision = 1;
/// Link register written by jal/call.
inline constexpr unsigned LinkReg = 31;
/// Stack pointer register initialised by the loader.
inline constexpr unsigned StackReg = 29;

/// Primary opcode field values.
enum class Opcode : uint8_t {
  RAlu = 0, ///< R-type ALU operation; funct selects the operator.
  Addi = 1,
  Andi = 2,
  Ori = 3,
  Xori = 4,
  Slti = 5,
  Slli = 6,
  Srli = 7,
  Srai = 8,
  Lui = 9, ///< rd = imm << 16
  Ld = 16, ///< rd = mem32[rs1 + imm]
  St = 17, ///< mem32[rs1 + imm] = rd
  Ldb = 18,
  Stb = 19,
  Beq = 24,
  Bne = 25,
  Blt = 26,
  Bge = 27,
  Jal = 32,  ///< r31 = pc + 4; pc += off26 * 4
  Jmp = 33,  ///< pc += off26 * 4 (no link)
  Jalr = 34, ///< rd = pc + 4; pc = rs1 + imm
  Halt = 40,
};

/// R-type ALU sub-opcodes held in the funct field.
enum class AluFunct : uint16_t {
  Add = 0,
  Sub = 1,
  And = 2,
  Or = 3,
  Xor = 4,
  Sll = 5,
  Srl = 6,
  Sra = 7,
  Slt = 8,
  Sltu = 9,
  Mul = 10,
  Div = 11,
  Rem = 12,
};

/// Coarse classification used by the timing models.
enum class InstClass : uint8_t {
  IntAlu,  ///< single-cycle integer op
  IntMul,  ///< multiply (multi-cycle functional unit)
  IntDiv,  ///< divide/remainder (long latency, unpipelined)
  Load,
  Store,
  Branch,  ///< conditional branch
  Jump,    ///< unconditional jump / call / indirect jump
  Halt,
  Invalid,
};

/// A fully decoded instruction. Produced once per fetched word; every
/// simulator in the project consumes this form.
struct DecodedInst {
  Opcode Op = Opcode::Halt;
  AluFunct Funct = AluFunct::Add;
  InstClass Cls = InstClass::Invalid;
  uint8_t Rd = 0;
  uint8_t Rs1 = 0;
  uint8_t Rs2 = 0;
  int32_t Imm = 0; ///< sign-extended immediate / branch or jump word offset
  uint32_t Raw = 0;

  bool isBranch() const { return Cls == InstClass::Branch; }
  bool isJump() const { return Cls == InstClass::Jump; }
  bool isControl() const { return isBranch() || isJump(); }
  bool isLoad() const { return Cls == InstClass::Load; }
  bool isStore() const { return Cls == InstClass::Store; }
  bool isMemory() const { return isLoad() || isStore(); }
  bool isHalt() const { return Cls == InstClass::Halt; }

  /// Returns true if the instruction writes Rd (r0 writes are discarded).
  bool writesRd() const;
  /// Returns true if the instruction reads Rs1 / Rs2 respectively.
  bool readsRs1() const;
  bool readsRs2() const;
};

/// Decodes one instruction word. Unknown encodings decode to
/// InstClass::Invalid, never trap.
DecodedInst decode(uint32_t Word);

/// Renders \p Inst at \p Pc as assembler text (e.g. "beq r1, r2, 0x1040").
std::string disassemble(const DecodedInst &Inst, uint32_t Pc);

/// \name Encoders (used by the assembler, workload generator and tests).
/// @{
uint32_t encodeR(AluFunct Funct, unsigned Rd, unsigned Rs1, unsigned Rs2);
uint32_t encodeI(Opcode Op, unsigned Rd, unsigned Rs1, int32_t Imm);
uint32_t encodeB(Opcode Op, unsigned Rs1, unsigned Rs2, int32_t WordOff);
uint32_t encodeJ(Opcode Op, int32_t WordOff);
uint32_t encodeHalt();
/// @}

/// Branch/jump target helper: target pc for a control instruction at \p Pc.
/// Only valid for Beq..Jmp (pc-relative forms).
inline uint32_t relativeTarget(const DecodedInst &Inst, uint32_t Pc) {
  return Pc + 4 + static_cast<uint32_t>(Inst.Imm << 2);
}

} // namespace isa
} // namespace facile

#endif // FACILE_ISA_ISA_H
