//===- TargetImage.h - Executable image for the target ISA -----*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The executable format consumed by every simulator. It stands in for the
/// SPARC/ELF binaries of the paper: a text segment of instruction words, a
/// data segment of bytes, an entry point and a symbol table for debugging.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_ISA_TARGETIMAGE_H
#define FACILE_ISA_TARGETIMAGE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace facile {
namespace isa {

/// Default virtual address of the first text word.
inline constexpr uint32_t DefaultTextBase = 0x1000;
/// Default virtual address of the data segment.
inline constexpr uint32_t DefaultDataBase = 0x100000;
/// Initial stack pointer installed by the loader (grows down).
inline constexpr uint32_t DefaultStackTop = 0x7ff000;

/// A loaded/loadable target executable.
struct TargetImage {
  uint32_t TextBase = DefaultTextBase;
  uint32_t DataBase = DefaultDataBase;
  uint32_t Entry = DefaultTextBase;
  std::vector<uint32_t> Text; ///< instruction words, in address order
  std::vector<uint8_t> Data;  ///< initialised data bytes
  std::map<std::string, uint32_t> Symbols;

  /// Returns the address one past the last text word.
  uint32_t textEnd() const {
    return TextBase + static_cast<uint32_t>(Text.size()) * 4;
  }

  /// Returns true if \p Addr falls inside the text segment.
  bool isTextAddr(uint32_t Addr) const {
    return Addr >= TextBase && Addr < textEnd();
  }

  /// Reads the instruction word at \p Addr; returns 0 (an `add r0` no-op
  /// pattern that decodes to RAlu) outside the segment. Callers are expected
  /// to stay in bounds; see isTextAddr().
  uint32_t fetch(uint32_t Addr) const {
    if (!isTextAddr(Addr))
      return 0;
    return Text[(Addr - TextBase) / 4];
  }
};

} // namespace isa
} // namespace facile

#endif // FACILE_ISA_TARGETIMAGE_H
