//===- Assembler.h - Two-pass assembler for the target ISA -----*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small two-pass assembler so that tests, examples and hand-written
/// kernels can express target programs symbolically.
///
/// Syntax:
///   .text / .data           switch sections (text is default)
///   label:                  define a label in the current section
///   .word v, v, ...         emit initialised data words (data section)
///   .space N                reserve N zeroed bytes (data section)
///   add rD, rS, rT          R-type ALU ops (add/sub/and/or/xor/sll/srl/
///                           sra/slt/sltu/mul/div/rem)
///   addi rD, rS, imm        I-type ALU ops (+ andi/ori/xori/slti/slli/...)
///   lui rD, imm
///   ld/st/ldb/stb rD, off(rS)
///   beq/bne/blt/bge rA, rB, label
///   jal label | j label | jalr rD, rS, imm | halt
/// Pseudo-ops: nop, mv rD,rS, li rD,imm32, la rD,label, call label, ret
/// Comments start with '#' or ';'.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_ISA_ASSEMBLER_H
#define FACILE_ISA_ASSEMBLER_H

#include "src/isa/TargetImage.h"

#include <optional>
#include <string>
#include <string_view>

namespace facile {
namespace isa {

/// Assembles \p Source into an executable image. Returns std::nullopt and
/// fills \p Error (as "line N: message") on failure. The image entry point is
/// the `main` label if defined, otherwise the first text word.
std::optional<TargetImage> assemble(std::string_view Source,
                                    std::string *Error = nullptr);

} // namespace isa
} // namespace facile

#endif // FACILE_ISA_ASSEMBLER_H
