//===- Decode.cpp - Instruction decoding and encoding --------------------===//

#include "src/isa/Isa.h"

#include <cassert>

using namespace facile;
using namespace facile::isa;

namespace {

constexpr uint32_t bits(uint32_t Word, unsigned Hi, unsigned Lo) {
  return (Word >> Lo) & ((1u << (Hi - Lo + 1)) - 1u);
}

constexpr int32_t signExtend(uint32_t Value, unsigned Width) {
  uint32_t Sign = 1u << (Width - 1);
  return static_cast<int32_t>((Value ^ Sign) - Sign);
}

InstClass classify(Opcode Op, AluFunct Funct) {
  switch (Op) {
  case Opcode::RAlu:
    if (Funct == AluFunct::Mul)
      return InstClass::IntMul;
    if (Funct == AluFunct::Div || Funct == AluFunct::Rem)
      return InstClass::IntDiv;
    return InstClass::IntAlu;
  case Opcode::Addi:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Slti:
  case Opcode::Slli:
  case Opcode::Srli:
  case Opcode::Srai:
  case Opcode::Lui:
    return InstClass::IntAlu;
  case Opcode::Ld:
  case Opcode::Ldb:
    return InstClass::Load;
  case Opcode::St:
  case Opcode::Stb:
    return InstClass::Store;
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
    return InstClass::Branch;
  case Opcode::Jal:
  case Opcode::Jmp:
  case Opcode::Jalr:
    return InstClass::Jump;
  case Opcode::Halt:
    return InstClass::Halt;
  }
  return InstClass::Invalid;
}

bool isKnownOpcode(uint32_t Op) {
  switch (static_cast<Opcode>(Op)) {
  case Opcode::RAlu:
  case Opcode::Addi:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Slti:
  case Opcode::Slli:
  case Opcode::Srli:
  case Opcode::Srai:
  case Opcode::Lui:
  case Opcode::Ld:
  case Opcode::St:
  case Opcode::Ldb:
  case Opcode::Stb:
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
  case Opcode::Jal:
  case Opcode::Jmp:
  case Opcode::Jalr:
  case Opcode::Halt:
    return true;
  }
  return false;
}

} // namespace

DecodedInst isa::decode(uint32_t Word) {
  DecodedInst Inst;
  Inst.Raw = Word;
  uint32_t Op = bits(Word, 31, 26);
  if (!isKnownOpcode(Op)) {
    Inst.Cls = InstClass::Invalid;
    return Inst;
  }
  Inst.Op = static_cast<Opcode>(Op);
  switch (Inst.Op) {
  case Opcode::RAlu: {
    uint32_t Funct = bits(Word, 10, 0);
    if (Funct > static_cast<uint32_t>(AluFunct::Rem)) {
      Inst.Cls = InstClass::Invalid;
      return Inst;
    }
    Inst.Funct = static_cast<AluFunct>(Funct);
    Inst.Rd = static_cast<uint8_t>(bits(Word, 25, 21));
    Inst.Rs1 = static_cast<uint8_t>(bits(Word, 20, 16));
    Inst.Rs2 = static_cast<uint8_t>(bits(Word, 15, 11));
    break;
  }
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
    // Branches reuse the rd slot for rs1 and the rs1 slot for rs2.
    Inst.Rs1 = static_cast<uint8_t>(bits(Word, 25, 21));
    Inst.Rs2 = static_cast<uint8_t>(bits(Word, 20, 16));
    Inst.Imm = signExtend(bits(Word, 15, 0), 16);
    break;
  case Opcode::Jal:
  case Opcode::Jmp:
    Inst.Imm = signExtend(bits(Word, 25, 0), 26);
    Inst.Rd = Inst.Op == Opcode::Jal ? LinkReg : 0;
    break;
  case Opcode::Halt:
    break;
  default: // I-type (ALU immediates, loads/stores, jalr).
    Inst.Rd = static_cast<uint8_t>(bits(Word, 25, 21));
    Inst.Rs1 = static_cast<uint8_t>(bits(Word, 20, 16));
    Inst.Imm = signExtend(bits(Word, 15, 0), 16);
    break;
  }
  Inst.Cls = classify(Inst.Op, Inst.Funct);
  return Inst;
}

bool DecodedInst::writesRd() const {
  if (Rd == 0)
    return false;
  switch (Cls) {
  case InstClass::IntAlu:
  case InstClass::IntMul:
  case InstClass::IntDiv:
  case InstClass::Load:
    return true;
  case InstClass::Jump:
    return Op == Opcode::Jal || Op == Opcode::Jalr;
  default:
    return false;
  }
}

bool DecodedInst::readsRs1() const {
  switch (Op) {
  case Opcode::Lui:
  case Opcode::Jal:
  case Opcode::Jmp:
  case Opcode::Halt:
    return false;
  default:
    return Cls != InstClass::Invalid;
  }
}

bool DecodedInst::readsRs2() const {
  return Op == Opcode::RAlu || Cls == InstClass::Branch;
}

uint32_t isa::encodeR(AluFunct Funct, unsigned Rd, unsigned Rs1, unsigned Rs2) {
  assert(Rd < NumRegs && Rs1 < NumRegs && Rs2 < NumRegs && "bad register");
  return (static_cast<uint32_t>(Opcode::RAlu) << 26) | (Rd << 21) |
         (Rs1 << 16) | (Rs2 << 11) | static_cast<uint32_t>(Funct);
}

uint32_t isa::encodeI(Opcode Op, unsigned Rd, unsigned Rs1, int32_t Imm) {
  assert(Rd < NumRegs && Rs1 < NumRegs && "bad register");
  assert(Imm >= -32768 && Imm <= 65535 && "immediate out of range");
  return (static_cast<uint32_t>(Op) << 26) | (Rd << 21) | (Rs1 << 16) |
         (static_cast<uint32_t>(Imm) & 0xffffu);
}

uint32_t isa::encodeB(Opcode Op, unsigned Rs1, unsigned Rs2, int32_t WordOff) {
  assert(Rs1 < NumRegs && Rs2 < NumRegs && "bad register");
  assert(WordOff >= -32768 && WordOff <= 32767 && "branch offset out of range");
  return (static_cast<uint32_t>(Op) << 26) | (Rs1 << 21) | (Rs2 << 16) |
         (static_cast<uint32_t>(WordOff) & 0xffffu);
}

uint32_t isa::encodeJ(Opcode Op, int32_t WordOff) {
  assert(WordOff >= -(1 << 25) && WordOff < (1 << 25) &&
         "jump offset out of range");
  return (static_cast<uint32_t>(Op) << 26) |
         (static_cast<uint32_t>(WordOff) & 0x3ffffffu);
}

uint32_t isa::encodeHalt() {
  return static_cast<uint32_t>(Opcode::Halt) << 26;
}
