//===- Disasm.cpp - Instruction disassembly -------------------------------===//

#include "src/isa/Isa.h"
#include "src/support/StringUtils.h"

using namespace facile;
using namespace facile::isa;

namespace {

const char *alumName(AluFunct F) {
  switch (F) {
  case AluFunct::Add:
    return "add";
  case AluFunct::Sub:
    return "sub";
  case AluFunct::And:
    return "and";
  case AluFunct::Or:
    return "or";
  case AluFunct::Xor:
    return "xor";
  case AluFunct::Sll:
    return "sll";
  case AluFunct::Srl:
    return "srl";
  case AluFunct::Sra:
    return "sra";
  case AluFunct::Slt:
    return "slt";
  case AluFunct::Sltu:
    return "sltu";
  case AluFunct::Mul:
    return "mul";
  case AluFunct::Div:
    return "div";
  case AluFunct::Rem:
    return "rem";
  }
  return "?";
}

const char *immName(Opcode Op) {
  switch (Op) {
  case Opcode::Addi:
    return "addi";
  case Opcode::Andi:
    return "andi";
  case Opcode::Ori:
    return "ori";
  case Opcode::Xori:
    return "xori";
  case Opcode::Slti:
    return "slti";
  case Opcode::Slli:
    return "slli";
  case Opcode::Srli:
    return "srli";
  case Opcode::Srai:
    return "srai";
  default:
    return "?";
  }
}

const char *branchName(Opcode Op) {
  switch (Op) {
  case Opcode::Beq:
    return "beq";
  case Opcode::Bne:
    return "bne";
  case Opcode::Blt:
    return "blt";
  case Opcode::Bge:
    return "bge";
  default:
    return "?";
  }
}

} // namespace

std::string isa::disassemble(const DecodedInst &Inst, uint32_t Pc) {
  switch (Inst.Op) {
  case Opcode::RAlu:
    return strFormat("%s r%u, r%u, r%u", alumName(Inst.Funct), Inst.Rd,
                     Inst.Rs1, Inst.Rs2);
  case Opcode::Addi:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Slti:
  case Opcode::Slli:
  case Opcode::Srli:
  case Opcode::Srai:
    return strFormat("%s r%u, r%u, %d", immName(Inst.Op), Inst.Rd, Inst.Rs1,
                     Inst.Imm);
  case Opcode::Lui:
    return strFormat("lui r%u, %d", Inst.Rd, Inst.Imm);
  case Opcode::Ld:
    return strFormat("ld r%u, %d(r%u)", Inst.Rd, Inst.Imm, Inst.Rs1);
  case Opcode::Ldb:
    return strFormat("ldb r%u, %d(r%u)", Inst.Rd, Inst.Imm, Inst.Rs1);
  case Opcode::St:
    return strFormat("st r%u, %d(r%u)", Inst.Rd, Inst.Imm, Inst.Rs1);
  case Opcode::Stb:
    return strFormat("stb r%u, %d(r%u)", Inst.Rd, Inst.Imm, Inst.Rs1);
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
    return strFormat("%s r%u, r%u, 0x%x", branchName(Inst.Op), Inst.Rs1,
                     Inst.Rs2, relativeTarget(Inst, Pc));
  case Opcode::Jal:
    return strFormat("jal 0x%x", relativeTarget(Inst, Pc));
  case Opcode::Jmp:
    return strFormat("j 0x%x", relativeTarget(Inst, Pc));
  case Opcode::Jalr:
    return strFormat("jalr r%u, r%u, %d", Inst.Rd, Inst.Rs1, Inst.Imm);
  case Opcode::Halt:
    return "halt";
  }
  return strFormat(".word 0x%08x", Inst.Raw);
}
