//===- Assembler.cpp - Two-pass assembler for the target ISA -------------===//

#include "src/isa/Assembler.h"

#include "src/isa/Isa.h"
#include "src/support/StringUtils.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <map>
#include <vector>

using namespace facile;
using namespace facile::isa;

namespace {

/// One tokenized source statement.
struct Stmt {
  unsigned Line = 0;
  std::string Label;               ///< label defined on this line, if any
  std::string Mnemonic;            ///< directive or instruction, lowercased
  std::vector<std::string> Operands;
};

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.';
}

std::string_view trim(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

std::string lower(std::string_view S) {
  std::string Out(S);
  for (char &C : Out)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Out;
}

/// Splits an operand list on commas, trimming whitespace.
std::vector<std::string> splitOperands(std::string_view S) {
  std::vector<std::string> Out;
  size_t Start = 0;
  for (size_t I = 0; I <= S.size(); ++I) {
    if (I == S.size() || S[I] == ',') {
      std::string_view Piece = trim(S.substr(Start, I - Start));
      if (!Piece.empty())
        Out.emplace_back(Piece);
      Start = I + 1;
    }
  }
  return Out;
}

class Assembler {
public:
  explicit Assembler(std::string_view Source) : Source(Source) {}

  std::optional<TargetImage> run(std::string *Error) {
    if (!tokenize() || !layout() || !emit()) {
      if (Error)
        *Error = Err;
      return std::nullopt;
    }
    if (auto It = Image.Symbols.find("main"); It != Image.Symbols.end())
      Image.Entry = It->second;
    else
      Image.Entry = Image.TextBase;
    return std::move(Image);
  }

private:
  std::string_view Source;
  std::vector<Stmt> Stmts;
  TargetImage Image;
  std::string Err;

  bool fail(unsigned Line, std::string Message) {
    Err = strFormat("line %u: %s", Line, Message.c_str());
    return false;
  }

  // --- Pass 0: split into statements -------------------------------------
  bool tokenize() {
    unsigned LineNo = 0;
    size_t Pos = 0;
    while (Pos <= Source.size()) {
      size_t End = Source.find('\n', Pos);
      if (End == std::string_view::npos)
        End = Source.size();
      std::string_view Line = Source.substr(Pos, End - Pos);
      Pos = End + 1;
      ++LineNo;
      if (size_t Hash = Line.find_first_of("#;"); Hash != std::string_view::npos)
        Line = Line.substr(0, Hash);
      Line = trim(Line);
      if (Line.empty())
        continue;

      Stmt S;
      S.Line = LineNo;
      // Optional leading label.
      if (size_t Colon = Line.find(':'); Colon != std::string_view::npos) {
        std::string_view Name = trim(Line.substr(0, Colon));
        bool AllIdent = !Name.empty();
        for (char C : Name)
          AllIdent &= isIdentChar(C);
        if (AllIdent) {
          S.Label = std::string(Name);
          Line = trim(Line.substr(Colon + 1));
        }
      }
      if (!Line.empty()) {
        size_t Sp = Line.find_first_of(" \t");
        if (Sp == std::string_view::npos) {
          S.Mnemonic = lower(Line);
        } else {
          S.Mnemonic = lower(Line.substr(0, Sp));
          S.Operands = splitOperands(Line.substr(Sp + 1));
        }
      }
      if (!S.Label.empty() || !S.Mnemonic.empty())
        Stmts.push_back(std::move(S));
    }
    return true;
  }

  // --- Pass 1: assign addresses to labels ---------------------------------
  /// Returns the number of instruction words a mnemonic expands to.
  static unsigned instWords(const std::string &M) {
    if (M == "li" || M == "la")
      return 2; // lui + ori, always two words for deterministic layout
    return 1;
  }

  bool layout() {
    bool InText = true;
    uint32_t TextOff = 0, DataOff = 0;
    for (const Stmt &S : Stmts) {
      if (!S.Label.empty()) {
        uint32_t Addr = InText ? Image.TextBase + TextOff
                               : Image.DataBase + DataOff;
        if (!Image.Symbols.emplace(S.Label, Addr).second)
          return fail(S.Line, strFormat("duplicate label '%s'",
                                        S.Label.c_str()));
      }
      if (S.Mnemonic.empty())
        continue;
      if (S.Mnemonic == ".text") {
        InText = true;
      } else if (S.Mnemonic == ".data") {
        InText = false;
      } else if (S.Mnemonic == ".word") {
        if (InText)
          return fail(S.Line, ".word is only valid in the data section");
        DataOff += 4 * static_cast<uint32_t>(S.Operands.size());
      } else if (S.Mnemonic == ".space") {
        if (InText || S.Operands.size() != 1)
          return fail(S.Line, "bad .space directive");
        DataOff += static_cast<uint32_t>(std::strtoul(
            S.Operands[0].c_str(), nullptr, 0));
      } else {
        if (!InText)
          return fail(S.Line, "instructions are only valid in .text");
        TextOff += 4 * instWords(S.Mnemonic);
      }
    }
    return true;
  }

  // --- Operand parsing -----------------------------------------------------
  bool parseReg(const std::string &Op, unsigned Line, unsigned *Reg) {
    if (Op.size() < 2 || (Op[0] != 'r' && Op[0] != 'R'))
      return fail(Line, strFormat("expected register, got '%s'", Op.c_str()));
    char *End = nullptr;
    unsigned long N = std::strtoul(Op.c_str() + 1, &End, 10);
    if (*End != '\0' || N >= NumRegs)
      return fail(Line, strFormat("bad register '%s'", Op.c_str()));
    *Reg = static_cast<unsigned>(N);
    return true;
  }

  /// Parses an immediate: a number, or a label name (resolved to its
  /// address).
  bool parseImm(const std::string &Op, unsigned Line, int64_t *Value) {
    if (!Op.empty() &&
        (std::isdigit(static_cast<unsigned char>(Op[0])) || Op[0] == '-' ||
         Op[0] == '+')) {
      char *End = nullptr;
      *Value = std::strtoll(Op.c_str(), &End, 0);
      if (*End != '\0')
        return fail(Line, strFormat("bad immediate '%s'", Op.c_str()));
      return true;
    }
    auto It = Image.Symbols.find(Op);
    if (It == Image.Symbols.end())
      return fail(Line, strFormat("undefined symbol '%s'", Op.c_str()));
    *Value = It->second;
    return true;
  }

  /// Parses "off(rN)" or "(rN)" memory operands.
  bool parseMem(const std::string &Op, unsigned Line, unsigned *Reg,
                int64_t *Off) {
    size_t L = Op.find('(');
    size_t R = Op.rfind(')');
    if (L == std::string::npos || R == std::string::npos || R < L)
      return fail(Line, strFormat("expected off(rN), got '%s'", Op.c_str()));
    std::string OffStr(trim(std::string_view(Op).substr(0, L)));
    std::string RegStr(trim(std::string_view(Op).substr(L + 1, R - L - 1)));
    *Off = 0;
    if (!OffStr.empty() && !parseImm(OffStr, Line, Off))
      return false;
    return parseReg(RegStr, Line, Reg);
  }

  bool checkOperands(const Stmt &S, size_t N) {
    if (S.Operands.size() == N)
      return true;
    return fail(S.Line, strFormat("'%s' expects %zu operands, got %zu",
                                  S.Mnemonic.c_str(), N, S.Operands.size()));
  }

  // --- Pass 2: emit --------------------------------------------------------
  bool emit() {
    bool InText = true;
    for (const Stmt &S : Stmts) {
      if (S.Mnemonic.empty())
        continue;
      if (S.Mnemonic == ".text") {
        InText = true;
        continue;
      }
      if (S.Mnemonic == ".data") {
        InText = false;
        continue;
      }
      if (!InText) {
        if (!emitData(S))
          return false;
        continue;
      }
      if (!emitInst(S))
        return false;
    }
    return true;
  }

  bool emitData(const Stmt &S) {
    if (S.Mnemonic == ".word") {
      for (const std::string &Op : S.Operands) {
        int64_t V = 0;
        if (!parseImm(Op, S.Line, &V))
          return false;
        uint32_t U = static_cast<uint32_t>(V);
        for (int B = 0; B != 4; ++B)
          Image.Data.push_back(static_cast<uint8_t>(U >> (8 * B)));
      }
      return true;
    }
    if (S.Mnemonic == ".space") {
      int64_t N = 0;
      if (!parseImm(S.Operands[0], S.Line, &N))
        return false;
      Image.Data.insert(Image.Data.end(), static_cast<size_t>(N), 0);
      return true;
    }
    return fail(S.Line, strFormat("unknown directive '%s'",
                                  S.Mnemonic.c_str()));
  }

  uint32_t here() const {
    return Image.TextBase + static_cast<uint32_t>(Image.Text.size()) * 4;
  }

  bool branchOffset(const std::string &Op, unsigned Line, int64_t *WordOff) {
    int64_t Target = 0;
    if (!parseImm(Op, Line, &Target))
      return false;
    int64_t Delta = Target - (static_cast<int64_t>(here()) + 4);
    if (Delta & 3)
      return fail(Line, "branch target not word aligned");
    *WordOff = Delta >> 2;
    return true;
  }

  static std::optional<AluFunct> aluFunct(const std::string &M) {
    static const std::map<std::string, AluFunct> Table = {
        {"add", AluFunct::Add},   {"sub", AluFunct::Sub},
        {"and", AluFunct::And},   {"or", AluFunct::Or},
        {"xor", AluFunct::Xor},   {"sll", AluFunct::Sll},
        {"srl", AluFunct::Srl},   {"sra", AluFunct::Sra},
        {"slt", AluFunct::Slt},   {"sltu", AluFunct::Sltu},
        {"mul", AluFunct::Mul},   {"div", AluFunct::Div},
        {"rem", AluFunct::Rem}};
    auto It = Table.find(M);
    if (It == Table.end())
      return std::nullopt;
    return It->second;
  }

  static std::optional<Opcode> immOpcode(const std::string &M) {
    static const std::map<std::string, Opcode> Table = {
        {"addi", Opcode::Addi}, {"andi", Opcode::Andi},
        {"ori", Opcode::Ori},   {"xori", Opcode::Xori},
        {"slti", Opcode::Slti}, {"slli", Opcode::Slli},
        {"srli", Opcode::Srli}, {"srai", Opcode::Srai}};
    auto It = Table.find(M);
    if (It == Table.end())
      return std::nullopt;
    return It->second;
  }

  static std::optional<Opcode> branchOpcode(const std::string &M) {
    static const std::map<std::string, Opcode> Table = {
        {"beq", Opcode::Beq},
        {"bne", Opcode::Bne},
        {"blt", Opcode::Blt},
        {"bge", Opcode::Bge}};
    auto It = Table.find(M);
    if (It == Table.end())
      return std::nullopt;
    return It->second;
  }

  static std::optional<Opcode> memOpcode(const std::string &M) {
    static const std::map<std::string, Opcode> Table = {
        {"ld", Opcode::Ld},
        {"st", Opcode::St},
        {"ldb", Opcode::Ldb},
        {"stb", Opcode::Stb}};
    auto It = Table.find(M);
    if (It == Table.end())
      return std::nullopt;
    return It->second;
  }

  bool emitInst(const Stmt &S) {
    const std::string &M = S.Mnemonic;

    if (auto Funct = aluFunct(M)) {
      unsigned Rd, Rs1, Rs2;
      if (!checkOperands(S, 3) || !parseReg(S.Operands[0], S.Line, &Rd) ||
          !parseReg(S.Operands[1], S.Line, &Rs1) ||
          !parseReg(S.Operands[2], S.Line, &Rs2))
        return false;
      Image.Text.push_back(encodeR(*Funct, Rd, Rs1, Rs2));
      return true;
    }
    if (auto Op = immOpcode(M)) {
      unsigned Rd, Rs1;
      int64_t Imm;
      if (!checkOperands(S, 3) || !parseReg(S.Operands[0], S.Line, &Rd) ||
          !parseReg(S.Operands[1], S.Line, &Rs1) ||
          !parseImm(S.Operands[2], S.Line, &Imm))
        return false;
      // Logical immediates are zero-extended by the ISA, so unsigned 16-bit
      // values are representable; arithmetic immediates sign-extend.
      bool Logical =
          *Op == Opcode::Andi || *Op == Opcode::Ori || *Op == Opcode::Xori;
      int64_t Hi = Logical ? 65535 : 32767;
      if (Imm < -32768 || Imm > Hi)
        return fail(S.Line, "immediate out of 16-bit range");
      Image.Text.push_back(encodeI(*Op, Rd, Rs1, static_cast<int32_t>(Imm)));
      return true;
    }
    if (auto Op = branchOpcode(M)) {
      unsigned Rs1, Rs2;
      int64_t Off;
      if (!checkOperands(S, 3) || !parseReg(S.Operands[0], S.Line, &Rs1) ||
          !parseReg(S.Operands[1], S.Line, &Rs2) ||
          !branchOffset(S.Operands[2], S.Line, &Off))
        return false;
      Image.Text.push_back(
          encodeB(*Op, Rs1, Rs2, static_cast<int32_t>(Off)));
      return true;
    }
    if (auto Op = memOpcode(M)) {
      unsigned Rd, Rs1;
      int64_t Off;
      if (!checkOperands(S, 2) || !parseReg(S.Operands[0], S.Line, &Rd) ||
          !parseMem(S.Operands[1], S.Line, &Rs1, &Off))
        return false;
      if (Off < -32768 || Off > 32767)
        return fail(S.Line, "memory offset out of 16-bit range");
      Image.Text.push_back(encodeI(*Op, Rd, Rs1, static_cast<int32_t>(Off)));
      return true;
    }
    if (M == "lui") {
      unsigned Rd;
      int64_t Imm;
      if (!checkOperands(S, 2) || !parseReg(S.Operands[0], S.Line, &Rd) ||
          !parseImm(S.Operands[1], S.Line, &Imm))
        return false;
      Image.Text.push_back(
          encodeI(Opcode::Lui, Rd, 0, static_cast<int32_t>(Imm & 0xffff)));
      return true;
    }
    if (M == "jal" || M == "call" || M == "j") {
      int64_t Off;
      if (!checkOperands(S, 1) || !branchOffset(S.Operands[0], S.Line, &Off))
        return false;
      Opcode Op = (M == "j") ? Opcode::Jmp : Opcode::Jal;
      Image.Text.push_back(encodeJ(Op, static_cast<int32_t>(Off)));
      return true;
    }
    if (M == "jalr") {
      unsigned Rd, Rs1;
      int64_t Imm;
      if (!checkOperands(S, 3) || !parseReg(S.Operands[0], S.Line, &Rd) ||
          !parseReg(S.Operands[1], S.Line, &Rs1) ||
          !parseImm(S.Operands[2], S.Line, &Imm))
        return false;
      Image.Text.push_back(
          encodeI(Opcode::Jalr, Rd, Rs1, static_cast<int32_t>(Imm)));
      return true;
    }
    if (M == "halt") {
      Image.Text.push_back(encodeHalt());
      return true;
    }
    // Pseudo-instructions.
    if (M == "nop") {
      Image.Text.push_back(encodeI(Opcode::Addi, 0, 0, 0));
      return true;
    }
    if (M == "mv") {
      unsigned Rd, Rs;
      if (!checkOperands(S, 2) || !parseReg(S.Operands[0], S.Line, &Rd) ||
          !parseReg(S.Operands[1], S.Line, &Rs))
        return false;
      Image.Text.push_back(encodeI(Opcode::Addi, Rd, Rs, 0));
      return true;
    }
    if (M == "li" || M == "la") {
      unsigned Rd;
      int64_t Imm;
      if (!checkOperands(S, 2) || !parseReg(S.Operands[0], S.Line, &Rd) ||
          !parseImm(S.Operands[1], S.Line, &Imm))
        return false;
      uint32_t U = static_cast<uint32_t>(Imm);
      Image.Text.push_back(
          encodeI(Opcode::Lui, Rd, 0, static_cast<int32_t>(U >> 16)));
      Image.Text.push_back(
          encodeI(Opcode::Ori, Rd, Rd, static_cast<int32_t>(U & 0xffff)));
      return true;
    }
    if (M == "ret") {
      Image.Text.push_back(encodeI(Opcode::Jalr, 0, LinkReg, 0));
      return true;
    }
    return fail(S.Line, strFormat("unknown mnemonic '%s'", M.c_str()));
  }
};

} // namespace

std::optional<TargetImage> isa::assemble(std::string_view Source,
                                         std::string *Error) {
  Assembler A(Source);
  return A.run(Error);
}
