//===- ArgParse.h - Declarative command-line flag parsing -------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative argument parser shared by every tool and benchmark
/// main. Each main registers its flags once — name, destination, value
/// type, help text — and gets consistent behaviour for free: `--help`
/// output generated from the registrations, typed value validation with
/// range checks, and a uniform unknown-flag diagnostic that exits 2.
///
/// The flag grammar is the one the tools always used: long options only,
/// values attached with '=' (`--instrs=1000`), bare boolean switches
/// (`--json`). Spellings registered here are exactly the spellings the
/// parser accepts, so porting a main is behaviour-preserving by
/// construction.
///
/// parse() returns ArgParse::KeepGoing when the program should proceed,
/// or a process exit status (0 after printing `--help`, 2 on any usage
/// error). Mains call:
///
///   support::ArgParse P("facilesim");
///   P.u64("instrs", Instrs, "<n>", "total retired-instruction target");
///   ...
///   if (int Rc = P.parse(Argc, Argv); Rc != support::ArgParse::KeepGoing)
///     return Rc;
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_SUPPORT_ARGPARSE_H
#define FACILE_SUPPORT_ARGPARSE_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace facile {
namespace support {

class ArgParse {
public:
  /// Sentinel returned by parse() when no terminal flag was hit and the
  /// program should continue; any other return is a process exit status.
  static constexpr int KeepGoing = -1;

  /// \p Tool prefixes diagnostics ("facilesim: error: ...") and the
  /// usage banner. \p Summary is an optional one-line description printed
  /// under the banner.
  explicit ArgParse(std::string Tool, std::string Summary = "");

  /// Free-form text appended after the flag table in --help (exit-status
  /// legends, examples).
  void epilog(std::string Text);

  // Registration. \p Name is the spelling without the leading "--" or the
  // '=': u64("instrs", ...) accepts `--instrs=123`. \p Meta is the value
  // placeholder shown in help ("<n>", "on|off"). Help text may contain
  // newlines; continuation lines are aligned under the first.

  /// `--name=<string>`; empty values are accepted.
  void str(const char *Name, std::string &Out, const char *Meta,
           const char *Help);

  /// `--name=<decimal>`, range-checked against [Min, Max].
  void u64(const char *Name, uint64_t &Out, const char *Meta,
           const char *Help, uint64_t Min = 0, uint64_t Max = UINT64_MAX);

  /// `--name=<float>`.
  void f64(const char *Name, double &Out, const char *Meta, const char *Help);

  /// Bare `--name`, sets \p Out true.
  void flag(const char *Name, bool &Out, const char *Help);

  /// `--name=on|off`.
  void onOff(const char *Name, bool &Out, const char *Help);

  /// `--name=<one of Choices>`; rejects anything else naming the choices.
  void choice(const char *Name, std::string &Out,
              std::vector<std::string> Choices, const char *Help);

  /// `--name=<value>` routed through \p Parse; on false the callback's
  /// \p Err is printed and parse() fails. For specs with their own parser
  /// (fault-inject) or side effects (endpoint bookkeeping).
  void custom(const char *Name, const char *Meta, const char *Help,
              std::function<bool(const std::string &V, std::string &Err)>
                  Parse);

  /// `--name` or `--name=<n>`: \p Present records that the flag appeared,
  /// \p Out keeps its default unless a value was attached.
  void optU64(const char *Name, bool &Present, uint64_t &Out,
              const char *Meta, const char *Help, uint64_t Min = 0);

  /// Accept non-flag arguments: the first one stops flag scanning and it
  /// plus everything after land in \p Out verbatim (the client's
  /// `<command> [args]` tail). Without this, positionals are usage errors.
  void positionals(std::vector<std::string> &Out, const char *Meta,
                   const char *Help);

  /// Parses \p Argv. Prints diagnostics/usage itself. Returns KeepGoing,
  /// 0 (after --help) or 2 (usage error).
  int parse(int Argc, char **Argv);

  /// True when \p Name was present in the last parse() call.
  bool seen(const char *Name) const;

  /// Writes the generated usage text (the --help output) to \p To.
  void printUsage(std::FILE *To) const;

private:
  struct Opt {
    std::string Name;          ///< spelling without "--"
    std::string Meta;          ///< value placeholder for help ("" = bare)
    std::string Help;
    bool TakesValue = false;   ///< requires "=value"
    bool ValueOptional = false;///< value may be omitted (optU64)
    bool Seen = false;
    std::function<bool(const std::string &V, std::string &Err)> Apply;
  };

  Opt *find(const std::string &Name);
  int fail(const char *Fmt, ...);

  std::string Tool;
  std::string Summary;
  std::string Epilog;
  std::vector<Opt> Opts;
  std::vector<std::string> *Pos = nullptr;
  std::string PosMeta, PosHelp;
};

} // namespace support
} // namespace facile

#endif // FACILE_SUPPORT_ARGPARSE_H
