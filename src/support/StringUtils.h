//===- StringUtils.h - printf-style formatting helpers ---------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//

#ifndef FACILE_SUPPORT_STRINGUTILS_H
#define FACILE_SUPPORT_STRINGUTILS_H

#include <string>

namespace facile {

/// printf-style formatting into a std::string.
std::string strFormat(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace facile

#endif // FACILE_SUPPORT_STRINGUTILS_H
