//===- JsonValue.cpp - Bounded-depth JSON parser ---------------------------===//

#include "src/support/JsonValue.h"

#include "src/support/StringUtils.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace facile;
using namespace facile::json;

namespace {

class Parser {
public:
  Parser(std::string_view Text, unsigned MaxDepth)
      : Begin(Text.data()), P(Text.data()), End(Text.data() + Text.size()),
        MaxDepth(MaxDepth) {}

  bool run(Value &Out, std::string &Err) {
    skipWs();
    if (!value(Out, 0))
      return fail(Err);
    skipWs();
    if (P != End) {
      Msg = "trailing content after JSON value";
      return fail(Err);
    }
    return true;
  }

private:
  bool fail(std::string &Err) {
    if (Msg.empty())
      return true;
    Err = strFormat("at byte %zu: %s", static_cast<size_t>(P - Begin),
                    Msg.c_str());
    return false;
  }
  bool setError(const char *M) {
    if (Msg.empty())
      Msg = M;
    return false;
  }

  void skipWs() {
    while (P != End && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
  bool lit(const char *S) {
    size_t N = std::strlen(S);
    if (static_cast<size_t>(End - P) < N || std::memcmp(P, S, N) != 0)
      return false;
    P += N;
    return true;
  }

  bool value(Value &Out, unsigned Depth) {
    if (P == End)
      return setError("unexpected end of input");
    switch (*P) {
    case '{':
      return object(Out, Depth);
    case '[':
      return array(Out, Depth);
    case '"': {
      std::string S;
      if (!string(S))
        return false;
      Out = Value::makeStr(std::move(S));
      return true;
    }
    case 't':
      if (!lit("true"))
        return setError("invalid literal");
      Out = Value::makeBool(true);
      return true;
    case 'f':
      if (!lit("false"))
        return setError("invalid literal");
      Out = Value::makeBool(false);
      return true;
    case 'n':
      if (!lit("null"))
        return setError("invalid literal");
      Out = Value::makeNull();
      return true;
    default:
      return number(Out);
    }
  }

  bool object(Value &Out, unsigned Depth) {
    if (Depth >= MaxDepth)
      return setError("nesting depth limit exceeded");
    ++P; // '{'
    Out = Value::makeObject();
    skipWs();
    if (P != End && *P == '}') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      std::string Key;
      if (!string(Key))
        return setError("expected object key string");
      skipWs();
      if (P == End || *P != ':')
        return setError("expected ':' after object key");
      ++P;
      skipWs();
      Value V;
      if (!value(V, Depth + 1))
        return false;
      Out.mutableMembers().emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (P == End)
        return setError("unterminated object");
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == '}') {
        ++P;
        return true;
      }
      return setError("expected ',' or '}' in object");
    }
  }

  bool array(Value &Out, unsigned Depth) {
    if (Depth >= MaxDepth)
      return setError("nesting depth limit exceeded");
    ++P; // '['
    Out = Value::makeArray();
    skipWs();
    if (P != End && *P == ']') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      Value V;
      if (!value(V, Depth + 1))
        return false;
      Out.mutableArray().push_back(std::move(V));
      skipWs();
      if (P == End)
        return setError("unterminated array");
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == ']') {
        ++P;
        return true;
      }
      return setError("expected ',' or ']' in array");
    }
  }

  /// Appends \p Cp to \p Out as UTF-8.
  static void appendUtf8(std::string &Out, uint32_t Cp) {
    if (Cp < 0x80) {
      Out.push_back(static_cast<char>(Cp));
    } else if (Cp < 0x800) {
      Out.push_back(static_cast<char>(0xC0 | (Cp >> 6)));
      Out.push_back(static_cast<char>(0x80 | (Cp & 0x3F)));
    } else if (Cp < 0x10000) {
      Out.push_back(static_cast<char>(0xE0 | (Cp >> 12)));
      Out.push_back(static_cast<char>(0x80 | ((Cp >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Cp & 0x3F)));
    } else {
      Out.push_back(static_cast<char>(0xF0 | (Cp >> 18)));
      Out.push_back(static_cast<char>(0x80 | ((Cp >> 12) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | ((Cp >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Cp & 0x3F)));
    }
  }

  bool hex4(uint32_t &Out) {
    if (End - P < 4)
      return setError("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = *P++;
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<uint32_t>(C - 'A' + 10);
      else
        return setError("invalid \\u escape digit");
    }
    return true;
  }

  bool string(std::string &Out) {
    if (P == End || *P != '"')
      return setError("expected string");
    ++P;
    Out.clear();
    while (P != End) {
      unsigned char C = static_cast<unsigned char>(*P);
      if (C == '"') {
        ++P;
        return true;
      }
      if (C < 0x20)
        return setError("unescaped control character in string");
      if (C != '\\') {
        Out.push_back(static_cast<char>(C));
        ++P;
        continue;
      }
      if (++P == End)
        return setError("unterminated escape");
      switch (*P++) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        uint32_t Cp = 0;
        if (!hex4(Cp))
          return false;
        if (Cp >= 0xD800 && Cp <= 0xDBFF) {
          // High surrogate: require a following \uDC00..\uDFFF.
          if (End - P < 2 || P[0] != '\\' || P[1] != 'u')
            return setError("lone high surrogate");
          P += 2;
          uint32_t Lo = 0;
          if (!hex4(Lo))
            return false;
          if (Lo < 0xDC00 || Lo > 0xDFFF)
            return setError("invalid low surrogate");
          Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Lo - 0xDC00);
        } else if (Cp >= 0xDC00 && Cp <= 0xDFFF) {
          return setError("lone low surrogate");
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return setError("invalid escape character");
      }
    }
    return setError("unterminated string");
  }

  bool number(Value &Out) {
    const char *Start = P;
    if (P != End && *P == '-')
      ++P;
    if (P == End || *P < '0' || *P > '9')
      return setError("invalid value");
    // Leading zero may not be followed by more digits.
    if (*P == '0' && P + 1 != End && P[1] >= '0' && P[1] <= '9')
      return setError("leading zero in number");
    while (P != End && *P >= '0' && *P <= '9')
      ++P;
    bool Integral = true;
    if (P != End && *P == '.') {
      Integral = false;
      ++P;
      if (P == End || *P < '0' || *P > '9')
        return setError("digit required after decimal point");
      while (P != End && *P >= '0' && *P <= '9')
        ++P;
    }
    if (P != End && (*P == 'e' || *P == 'E')) {
      Integral = false;
      ++P;
      if (P != End && (*P == '+' || *P == '-'))
        ++P;
      if (P == End || *P < '0' || *P > '9')
        return setError("digit required in exponent");
      while (P != End && *P >= '0' && *P <= '9')
        ++P;
    }
    std::string Text(Start, P); // NUL-terminate for strtoll/strtod
    if (Integral) {
      errno = 0;
      char *EndPtr = nullptr;
      long long V = std::strtoll(Text.c_str(), &EndPtr, 10);
      if (errno != ERANGE && EndPtr == Text.c_str() + Text.size()) {
        Out = Value::makeInt(static_cast<int64_t>(V));
        return true;
      }
      // Out-of-int64-range integers degrade to double, like most parsers.
    }
    errno = 0;
    double D = std::strtod(Text.c_str(), nullptr);
    if (!std::isfinite(D))
      return setError("number out of range");
    Out = Value::makeDouble(D);
    return true;
  }

  const char *Begin;
  const char *P;
  const char *End;
  unsigned MaxDepth;
  std::string Msg;
};

} // namespace

bool json::parse(std::string_view Text, Value &Out, std::string &Err,
                 unsigned MaxDepth) {
  return Parser(Text, MaxDepth).run(Out, Err);
}
