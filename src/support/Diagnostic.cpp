//===- Diagnostic.cpp - Error reporting for the Facile compiler ----------===//

#include "src/support/Diagnostic.h"

#include "src/support/StringUtils.h"

using namespace facile;

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    const char *Kind = D.Kind == DiagKind::Error     ? "error"
                       : D.Kind == DiagKind::Warning ? "warning"
                                                     : "note";
    Out += strFormat("%u:%u: %s: %s\n", D.Loc.Line, D.Loc.Column, Kind,
                     D.Message.c_str());
  }
  return Out;
}
