//===- JsonValue.h - Bounded-depth JSON parser ------------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reading half of the JSON support layer (Json.h is the writing
/// half): a small document tree plus a recursive-descent parser with an
/// explicit nesting-depth bound. The parser exists for the facilesimd wire
/// protocol, where every input byte is untrusted — a request of 100k
/// nested '[' characters must produce a structured parse error, not a
/// stack overflow — so depth, not just size, is a hard limit. Numbers
/// parse as int64 when they are integral and in range (step counts,
/// session ids), doubles otherwise; strings handle the full escape set
/// including \uXXXX (encoded back to UTF-8, surrogate pairs supported).
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_SUPPORT_JSONVALUE_H
#define FACILE_SUPPORT_JSONVALUE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace facile {
namespace json {

/// One parsed JSON value. Object member order is preserved; lookups return
/// the first member with a matching key.
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, Str, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isStr() const { return K == Kind::Str; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolOr(bool Default) const { return isBool() ? B : Default; }
  /// Number coercion: Int returns the stored value, Double truncates.
  int64_t intOr(int64_t Default) const {
    if (K == Kind::Int)
      return I;
    if (K == Kind::Double)
      return static_cast<int64_t>(D);
    return Default;
  }
  double doubleOr(double Default) const {
    if (K == Kind::Double)
      return D;
    if (K == Kind::Int)
      return static_cast<double>(I);
    return Default;
  }
  const std::string &strOr(const std::string &Default) const {
    return isStr() ? S : Default;
  }
  const std::string &str() const { return S; } ///< empty unless isStr()

  const std::vector<Value> &array() const { return A; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return O;
  }

  /// Object member lookup; null when this is not an object or the key is
  /// absent.
  const Value *get(std::string_view Key) const {
    if (K == Kind::Object)
      for (const auto &M : O)
        if (M.first == Key)
          return &M.second;
    return nullptr;
  }

  //===-- Construction (parser and tests) -----------------------------------
  static Value makeNull() { return Value(); }
  static Value makeBool(bool V) {
    Value R;
    R.K = Kind::Bool;
    R.B = V;
    return R;
  }
  static Value makeInt(int64_t V) {
    Value R;
    R.K = Kind::Int;
    R.I = V;
    return R;
  }
  static Value makeDouble(double V) {
    Value R;
    R.K = Kind::Double;
    R.D = V;
    return R;
  }
  static Value makeStr(std::string V) {
    Value R;
    R.K = Kind::Str;
    R.S = std::move(V);
    return R;
  }
  static Value makeArray() {
    Value R;
    R.K = Kind::Array;
    return R;
  }
  static Value makeObject() {
    Value R;
    R.K = Kind::Object;
    return R;
  }
  std::vector<Value> &mutableArray() { return A; }
  std::vector<std::pair<std::string, Value>> &mutableMembers() { return O; }

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0.0;
  std::string S;
  std::vector<Value> A;
  std::vector<std::pair<std::string, Value>> O;
};

/// Parses \p Text as exactly one JSON document (trailing whitespace
/// allowed, trailing content not). On failure returns false with a
/// one-line diagnostic (including byte offset) in \p Err and \p Out
/// unspecified. \p MaxDepth bounds container nesting; exceeding it is a
/// parse error, never deeper recursion.
bool parse(std::string_view Text, Value &Out, std::string &Err,
           unsigned MaxDepth = 32);

} // namespace json
} // namespace facile

#endif // FACILE_SUPPORT_JSONVALUE_H
