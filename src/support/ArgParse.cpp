//===- ArgParse.cpp - Declarative command-line flag parsing ----------------===//

#include "src/support/ArgParse.h"

#include <cstdarg>
#include <cstdlib>
#include <cstring>

using namespace facile;
using namespace facile::support;

ArgParse::ArgParse(std::string Tool, std::string Summary)
    : Tool(std::move(Tool)), Summary(std::move(Summary)) {}

void ArgParse::epilog(std::string Text) { Epilog = std::move(Text); }

ArgParse::Opt *ArgParse::find(const std::string &Name) {
  for (Opt &O : Opts)
    if (O.Name == Name)
      return &O;
  return nullptr;
}

void ArgParse::str(const char *Name, std::string &Out, const char *Meta,
                   const char *Help) {
  custom(Name, Meta, Help, [&Out](const std::string &V, std::string &) {
    Out = V;
    return true;
  });
}

void ArgParse::u64(const char *Name, uint64_t &Out, const char *Meta,
                   const char *Help, uint64_t Min, uint64_t Max) {
  std::string N = Name;
  custom(Name, Meta, Help,
         [&Out, N, Min, Max](const std::string &V, std::string &Err) {
           char *End = nullptr;
           uint64_t Parsed = std::strtoull(V.c_str(), &End, 10);
           if (V.empty() || End != V.c_str() + V.size()) {
             Err = "--" + N + " takes a decimal number, not '" + V + "'";
             return false;
           }
           if (Parsed < Min) {
             Err = "--" + N + " must be at least " + std::to_string(Min);
             return false;
           }
           if (Parsed > Max) {
             Err = "--" + N + " must be at most " + std::to_string(Max);
             return false;
           }
           Out = Parsed;
           return true;
         });
}

void ArgParse::f64(const char *Name, double &Out, const char *Meta,
                   const char *Help) {
  std::string N = Name;
  custom(Name, Meta, Help,
         [&Out, N](const std::string &V, std::string &Err) {
           char *End = nullptr;
           double Parsed = std::strtod(V.c_str(), &End);
           if (V.empty() || End != V.c_str() + V.size()) {
             Err = "--" + N + " takes a number, not '" + V + "'";
             return false;
           }
           Out = Parsed;
           return true;
         });
}

void ArgParse::flag(const char *Name, bool &Out, const char *Help) {
  Opt O;
  O.Name = Name;
  O.Help = Help;
  O.Apply = [&Out](const std::string &, std::string &) {
    Out = true;
    return true;
  };
  Opts.push_back(std::move(O));
}

void ArgParse::onOff(const char *Name, bool &Out, const char *Help) {
  std::string N = Name;
  custom(Name, "on|off", Help,
         [&Out, N](const std::string &V, std::string &Err) {
           if (V == "on")
             Out = true;
           else if (V == "off")
             Out = false;
           else {
             Err = "--" + N + " takes on or off, not '" + V + "'";
             return false;
           }
           return true;
         });
}

void ArgParse::choice(const char *Name, std::string &Out,
                      std::vector<std::string> Choices, const char *Help) {
  std::string N = Name;
  std::string Meta;
  for (const std::string &C : Choices)
    Meta += (Meta.empty() ? "" : "|") + C;
  custom(Name, Meta.c_str(), Help,
         [&Out, N, Choices, Meta](const std::string &V, std::string &Err) {
           for (const std::string &C : Choices)
             if (V == C) {
               Out = V;
               return true;
             }
           Err = "--" + N + " takes " + Meta + ", not '" + V + "'";
           return false;
         });
}

void ArgParse::custom(
    const char *Name, const char *Meta, const char *Help,
    std::function<bool(const std::string &V, std::string &Err)> Parse) {
  Opt O;
  O.Name = Name;
  O.Meta = Meta;
  O.Help = Help;
  O.TakesValue = true;
  O.Apply = std::move(Parse);
  Opts.push_back(std::move(O));
}

void ArgParse::optU64(const char *Name, bool &Present, uint64_t &Out,
                      const char *Meta, const char *Help, uint64_t Min) {
  std::string N = Name;
  Opt O;
  O.Name = Name;
  O.Meta = std::string("[=") + Meta + "]";
  O.Help = Help;
  O.TakesValue = true;
  O.ValueOptional = true;
  O.Apply = [&Present, &Out, N, Min](const std::string &V, std::string &Err) {
    Present = true;
    if (V.empty())
      return true; // bare form: keep the default
    char *End = nullptr;
    uint64_t Parsed = std::strtoull(V.c_str(), &End, 10);
    if (End != V.c_str() + V.size()) {
      Err = "--" + N + " takes a decimal number, not '" + V + "'";
      return false;
    }
    if (Parsed < Min) {
      Err = "--" + N + " must be at least " + std::to_string(Min);
      return false;
    }
    Out = Parsed;
    return true;
  };
  Opts.push_back(std::move(O));
}

void ArgParse::positionals(std::vector<std::string> &Out, const char *Meta,
                           const char *Help) {
  Pos = &Out;
  PosMeta = Meta;
  PosHelp = Help;
}

bool ArgParse::seen(const char *Name) const {
  for (const Opt &O : Opts)
    if (O.Name == Name)
      return O.Seen;
  return false;
}

int ArgParse::fail(const char *Fmt, ...) {
  std::fprintf(stderr, "%s: error: ", Tool.c_str());
  va_list Ap;
  va_start(Ap, Fmt);
  std::vfprintf(stderr, Fmt, Ap);
  va_end(Ap);
  std::fprintf(stderr, "\n");
  printUsage(stderr);
  return 2;
}

int ArgParse::parse(int Argc, char **Argv) {
  for (Opt &O : Opts)
    O.Seen = false;
  if (Pos)
    Pos->clear();

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      // First positional ends flag scanning: the rest is the command tail.
      if (!Pos)
        return fail("unexpected argument '%s'", Arg.c_str());
      for (; I < Argc; ++I)
        Pos->push_back(Argv[I]);
      break;
    }
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout);
      return 0;
    }

    const size_t Eq = Arg.find('=');
    const std::string Name =
        Arg.substr(2, Eq == std::string::npos ? std::string::npos : Eq - 2);
    Opt *O = find(Name);
    if (!O)
      return fail("unknown option '%s'", Arg.c_str());
    if (Eq == std::string::npos && O->TakesValue && !O->ValueOptional)
      return fail("option --%s requires a value (--%s=%s)", Name.c_str(),
                  Name.c_str(), O->Meta.c_str());
    if (Eq != std::string::npos && !O->TakesValue)
      return fail("option --%s does not take a value", Name.c_str());

    const std::string Value =
        Eq == std::string::npos ? std::string() : Arg.substr(Eq + 1);
    std::string Err;
    if (!O->Apply(Value, Err))
      return fail("%s", Err.c_str());
    O->Seen = true;
  }
  return KeepGoing;
}

void ArgParse::printUsage(std::FILE *To) const {
  std::fprintf(To, "usage: %s [options]%s%s\n", Tool.c_str(),
               Pos ? " " : "", Pos ? PosMeta.c_str() : "");
  if (!Summary.empty())
    std::fprintf(To, "%s\n", Summary.c_str());
  // Two-column layout: flag spelling, then help; continuation lines in
  // multi-line help strings align under the first help column.
  constexpr size_t HelpCol = 34;
  for (const Opt &O : Opts) {
    std::string Left = "  --" + O.Name;
    if (O.TakesValue && !O.ValueOptional)
      Left += "=" + O.Meta;
    else if (O.ValueOptional)
      Left += O.Meta;
    if (Left.size() + 2 > HelpCol) {
      std::fprintf(To, "%s\n%*s", Left.c_str(), (int)HelpCol, "");
    } else {
      Left.resize(HelpCol, ' ');
      std::fprintf(To, "%s", Left.c_str());
    }
    for (const char *P = O.Help.c_str(); *P; ++P) {
      std::fputc(*P, To);
      if (*P == '\n')
        std::fprintf(To, "%*s", (int)HelpCol, "");
    }
    std::fputc('\n', To);
  }
  if (Pos && !PosHelp.empty())
    std::fprintf(To, "%s\n", PosHelp.c_str());
  if (!Epilog.empty())
    std::fprintf(To, "%s", Epilog.c_str());
}
