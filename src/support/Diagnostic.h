//===- Diagnostic.h - Error reporting for the Facile compiler --*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. The Facile compiler never throws; every
/// front-end failure is reported here and callers test hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_SUPPORT_DIAGNOSTIC_H
#define FACILE_SUPPORT_DIAGNOSTIC_H

#include "src/support/SourceLoc.h"

#include <string>
#include <vector>

namespace facile {

/// Severity of a reported diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic: severity, location, and rendered message.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced while compiling one Facile program.
///
/// Messages follow the LLVM style: start lowercase, no trailing period.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: severity: message" lines,
  /// suitable for tests and tool output.
  std::string str() const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace facile

#endif // FACILE_SUPPORT_DIAGNOSTIC_H
