//===- Json.cpp - Incremental JSON writer -----------------------------------===//

#include "src/support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace facile;
using namespace facile::json;

void json::appendEscaped(std::string &Out, std::string_view V) {
  for (char C : V) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
}

void json::appendDouble(std::string &Out, double V) {
  // JSON has no NaN/Infinity literals; clamp rather than emit garbage.
  if (!std::isfinite(V))
    V = 0.0;
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.10g", V);
  Out += Buf;
  // "%g" of an integral value prints no dot/exponent; that is still legal
  // JSON (a number), so no fixup is needed.
}

void Writer::appendUnsigned(uint64_t V) {
  char Buf[24];
  char *P = Buf + sizeof(Buf);
  do {
    *--P = static_cast<char>('0' + V % 10);
    V /= 10;
  } while (V != 0);
  Out.append(P, Buf + sizeof(Buf) - P);
}

Writer &Writer::key(std::string_view K) {
  assert((Stack[Depth] == ObjFirst || Stack[Depth] == Obj) &&
         "key() outside an object");
  if (Stack[Depth] == Obj)
    Out.push_back(',');
  Out.push_back('"');
  appendEscaped(Out, K);
  Out += "\":";
  Stack[Depth] = ObjValue;
  return *this;
}

void Writer::preValue() {
  switch (Stack[Depth]) {
  case Top:
    break;
  case ObjValue:
    Stack[Depth] = Obj; // the pending member's value is being written
    break;
  case ArrFirst:
    Stack[Depth] = Arr;
    break;
  case Arr:
    Out.push_back(',');
    break;
  case ObjFirst:
  case Obj:
    assert(false && "value inside an object requires key() first");
    break;
  }
}
