//===- StringUtils.cpp - printf-style formatting helpers -----------------===//

#include "src/support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace facile;

std::string facile::strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Needed > 0) {
    Out.resize(static_cast<size_t>(Needed));
    std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  }
  va_end(Args);
  return Out;
}
