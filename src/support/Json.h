//===- Json.h - Incremental JSON writer -------------------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, allocation-light JSON writer: proper string escaping, automatic
/// comma placement, nested objects/arrays, and careful number formatting
/// (non-finite doubles are clamped to 0 so the output is always parseable).
/// Every JSON string this repository emits — statsJson(), --metrics files,
/// Chrome trace files, the bench harness result lines — is built with this
/// writer instead of hand-concatenated printf formats.
///
/// Usage:
///   json::Writer W;
///   W.beginObject().field("steps", 42).key("cache").beginObject()
///     .field("hits", 7).endObject().endObject();
///   std::string S = W.take();
///
/// The writer does not validate call order exhaustively; balanced() lets
/// tests assert structural sanity, and debug builds assert on the common
/// misuses (value with a pending key missing, endObject inside an array).
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_SUPPORT_JSON_H
#define FACILE_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>

namespace facile {
namespace json {

/// Appends \p V to \p Out with JSON escaping (quotes, backslash, control
/// characters as \uXXXX), without surrounding quotes.
void appendEscaped(std::string &Out, std::string_view V);

/// Appends a JSON-legal formatting of \p V (non-finite values become 0).
void appendDouble(std::string &Out, double V);

class Writer {
public:
  Writer() { Stack[0] = Top; }

  Writer &beginObject() {
    preValue();
    Out.push_back('{');
    push(ObjFirst);
    return *this;
  }
  Writer &endObject() {
    Out.push_back('}');
    pop(ObjFirst, Obj);
    return *this;
  }
  Writer &beginArray() {
    preValue();
    Out.push_back('[');
    push(ArrFirst);
    return *this;
  }
  Writer &endArray() {
    Out.push_back(']');
    pop(ArrFirst, Arr);
    return *this;
  }

  /// Emits the member key (with separators) inside an object; the next
  /// value/begin* call writes its value.
  Writer &key(std::string_view K);

  Writer &value(std::string_view V) {
    preValue();
    Out.push_back('"');
    appendEscaped(Out, V);
    Out.push_back('"');
    return *this;
  }
  Writer &value(const char *V) { return value(std::string_view(V)); }
  Writer &value(bool V) {
    preValue();
    Out += V ? "true" : "false";
    return *this;
  }
  Writer &value(double V) {
    preValue();
    appendDouble(Out, V);
    return *this;
  }
  Writer &value(uint64_t V) {
    preValue();
    appendUnsigned(V);
    return *this;
  }
  Writer &value(int64_t V) {
    preValue();
    if (V < 0) {
      Out.push_back('-');
      appendUnsigned(~static_cast<uint64_t>(V) + 1);
    } else {
      appendUnsigned(static_cast<uint64_t>(V));
    }
    return *this;
  }
  Writer &value(uint32_t V) { return value(static_cast<uint64_t>(V)); }
  Writer &value(int32_t V) { return value(static_cast<int64_t>(V)); }
  Writer &null() {
    preValue();
    Out += "null";
    return *this;
  }

  /// Splices pre-serialized JSON (e.g. an embedded statsJson() object) as
  /// the next value. The caller vouches for its validity.
  Writer &rawValue(std::string_view Json) {
    preValue();
    Out += Json;
    return *this;
  }

  template <typename T> Writer &field(std::string_view K, T V) {
    key(K);
    return value(V);
  }
  Writer &rawField(std::string_view K, std::string_view Json) {
    key(K);
    return rawValue(Json);
  }
  Writer &objectField(std::string_view K) {
    key(K);
    return beginObject();
  }
  Writer &arrayField(std::string_view K) {
    key(K);
    return beginArray();
  }

  /// True when every beginObject/beginArray has been closed and exactly
  /// one top-level value was written.
  bool balanced() const { return Depth == 0 && !Out.empty(); }

  const std::string &str() const { return Out; }
  std::string take() { return std::move(Out); }
  void clear() {
    Out.clear();
    Depth = 0;
    Stack[0] = Top;
  }

private:
  enum State : uint8_t { Top, ObjFirst, Obj, ArrFirst, Arr, ObjValue };

  void appendUnsigned(uint64_t V);
  void preValue();
  void push(State S) {
    if (Depth + 1 < MaxDepth)
      Stack[++Depth] = S;
  }
  void pop(State First, State Rest) {
    (void)First;
    (void)Rest;
    if (Depth > 0)
      --Depth;
    // Closing the value slot of an object member: the member is complete.
    if (Stack[Depth] == ObjValue)
      Stack[Depth] = Obj;
  }

  static constexpr unsigned MaxDepth = 64;
  std::string Out;
  State Stack[MaxDepth];
  unsigned Depth = 0;
};

} // namespace json
} // namespace facile

#endif // FACILE_SUPPORT_JSON_H
