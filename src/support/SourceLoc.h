//===- SourceLoc.h - Source locations for Facile diagnostics ---*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight (line, column) source location used by the lexer, parser and
/// diagnostic engine. Offsets are 1-based; a zero line denotes "unknown".
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_SUPPORT_SOURCELOC_H
#define FACILE_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace facile {

/// A position in a Facile source buffer. Line/column are 1-based; the
/// default-constructed location is the "unknown" location (line 0).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

} // namespace facile

#endif // FACILE_SUPPORT_SOURCELOC_H
