//===- Hashing.h - FNV-1a hashing utilities ---------------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic FNV-1a hashing used for action-cache keys and workload
/// generation. Kept independent of std::hash so that cache statistics are
/// reproducible across standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_SUPPORT_HASHING_H
#define FACILE_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>

namespace facile {

inline constexpr uint64_t FNVOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t FNVPrime = 0x100000001b3ULL;

/// Hashes \p Size bytes starting at \p Data, continuing from \p Seed.
inline uint64_t hashBytes(const void *Data, size_t Size,
                          uint64_t Seed = FNVOffset) {
  const auto *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I != Size; ++I) {
    H ^= P[I];
    H *= FNVPrime;
  }
  return H;
}

/// Mixes one 64-bit value into a running hash.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  return hashBytes(&Value, sizeof(Value), Seed);
}

} // namespace facile

#endif // FACILE_SUPPORT_HASHING_H
