//===- Rng.h - Deterministic pseudo-random numbers --------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64 generator. Workload generation must be bit-reproducible across
/// platforms, so we avoid std::mt19937's distribution-dependent behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_SUPPORT_RNG_H
#define FACILE_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace facile {

/// Deterministic SplitMix64 PRNG.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "below() requires a positive bound");
    return next() % Bound;
  }

  /// Returns a value uniformly distributed in [Lo, Hi] (inclusive).
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() bounds out of order");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace facile

#endif // FACILE_SUPPORT_RNG_H
