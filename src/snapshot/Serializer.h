//===- Serializer.h - Bounds-checked binary (de)serialization ---*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte layer of the snapshot subsystem (Snapshot.h): an append-only
/// Writer and a bounds-checked Reader over flat byte buffers, plus the
/// CRC-32 used to checksum every container section.
///
/// The Reader is built for hostile input — snapshot files may be
/// truncated, bit-flipped or simply stale. Every read checks bounds; a
/// failed read sticks (ok() stays false), returns a zero value and never
/// touches out-of-range memory, so callers can decode an entire payload
/// straight-line and check ok() once at the end. Vector reads bound the
/// element count by the bytes actually remaining, so a corrupt length
/// prefix cannot trigger a multi-gigabyte allocation.
///
/// Values are fixed-width little-endian. Structs are serialized
/// field-by-field — never by memcpy of the struct — so padding bytes
/// neither leak into files nor break round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_SNAPSHOT_SERIALIZER_H
#define FACILE_SNAPSHOT_SERIALIZER_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace facile {
namespace snapshot {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of \p Len bytes at \p Data,
/// continuing from \p Seed so section checksums can be streamed.
uint32_t crc32(const void *Data, size_t Len, uint32_t Seed = 0);

/// Append-only byte sink for one snapshot payload.
class Writer {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V) { put(&V, 4); }
  void u64(uint64_t V) { put(&V, 8); }
  void i64(int64_t V) { put(&V, 8); }
  void bytes(const void *Data, size_t Len) { put(Data, Len); }

  /// Length-prefixed (u64 element count) vectors of fixed-width elements.
  void i64Vec(const std::vector<int64_t> &V) {
    u64(V.size());
    put(V.data(), V.size() * sizeof(int64_t));
  }
  void u32Vec(const std::vector<uint32_t> &V) {
    u64(V.size());
    put(V.data(), V.size() * sizeof(uint32_t));
  }
  void u8Vec(const std::vector<uint8_t> &V) {
    u64(V.size());
    put(V.data(), V.size());
  }
  void charVec(const std::vector<char> &V) {
    u64(V.size());
    put(V.data(), V.size());
  }

  size_t size() const { return Buf.size(); }
  const std::vector<uint8_t> &buffer() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  void put(const void *Data, size_t Len) {
    if (Len == 0)
      return; // empty vectors have null data(); keep memlib calls non-null
    const auto *P = static_cast<const uint8_t *>(Data);
    Buf.insert(Buf.end(), P, P + Len);
  }

  std::vector<uint8_t> Buf;
};

/// Bounds-checked byte source over one snapshot payload. Does not own the
/// bytes; the buffer must outlive the reader.
class Reader {
public:
  Reader(const uint8_t *Data, size_t Len) : Data(Data), Len(Len) {}
  explicit Reader(const std::vector<uint8_t> &V) : Data(V.data()), Len(V.size()) {}

  uint8_t u8() {
    uint8_t V = 0;
    get(&V, 1);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    get(&V, 4);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    get(&V, 8);
    return V;
  }
  int64_t i64() {
    int64_t V = 0;
    get(&V, 8);
    return V;
  }
  bool bytes(void *Out, size_t N) { return get(Out, N); }

  /// Reads a length-prefixed vector. The count is validated against the
  /// bytes remaining before any allocation, so corrupt counts fail cleanly
  /// instead of exhausting memory. Returns false (and fails the reader) on
  /// short input.
  bool i64Vec(std::vector<int64_t> &Out) { return vec(Out, sizeof(int64_t)); }
  bool u32Vec(std::vector<uint32_t> &Out) { return vec(Out, sizeof(uint32_t)); }
  bool u8Vec(std::vector<uint8_t> &Out) { return vec(Out, 1); }
  bool charVec(std::vector<char> &Out) { return vec(Out, 1); }

  /// True while every read so far was in bounds.
  bool ok() const { return !Failed; }
  /// Marks the payload as invalid (semantic validation failures).
  void fail() { Failed = true; }
  bool atEnd() const { return Pos == Len; }
  size_t remaining() const { return Len - Pos; }

private:
  bool get(void *Out, size_t N) {
    if (N == 0)
      return !Failed;
    if (Failed || N > Len - Pos) {
      Failed = true;
      std::memset(Out, 0, N);
      return false;
    }
    std::memcpy(Out, Data + Pos, N);
    Pos += N;
    return true;
  }

  template <typename T> bool vec(std::vector<T> &Out, size_t ElemSize) {
    uint64_t N = u64();
    if (Failed || N > remaining() / ElemSize) {
      Failed = true;
      return false;
    }
    Out.resize(static_cast<size_t>(N));
    return get(Out.data(), static_cast<size_t>(N) * ElemSize);
  }

  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace snapshot
} // namespace facile

#endif // FACILE_SNAPSHOT_SERIALIZER_H
