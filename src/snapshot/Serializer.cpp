//===- Serializer.cpp - Bounds-checked binary (de)serialization ------------===//

#include "src/snapshot/Serializer.h"

namespace facile {
namespace snapshot {

namespace {

struct Crc32Table {
  uint32_t T[256];
  Crc32Table() {
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xedb88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
  }
};

} // namespace

uint32_t crc32(const void *Data, size_t Len, uint32_t Seed) {
  static const Crc32Table Table;
  const auto *P = static_cast<const uint8_t *>(Data);
  uint32_t C = Seed ^ 0xffffffffu;
  for (size_t I = 0; I != Len; ++I)
    C = Table.T[(C ^ P[I]) & 0xffu] ^ (C >> 8);
  return C ^ 0xffffffffu;
}

} // namespace snapshot
} // namespace facile
