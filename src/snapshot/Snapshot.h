//===- Snapshot.h - Versioned, checksummed snapshot container ---*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk container for persisted simulation state. The paper's whole
/// premise is that simulation work is redundant; persisting the action
/// cache and full simulation checkpoints extends that memoization from
/// intra-run to inter-run, so a process can warm-start instead of paying
/// slow-simulator warmup again.
///
/// One container holds one payload kind:
///
///  - **Checkpoint** — complete dynamic simulation state (target memory,
///    globals/arrays/slots, cycle and retired counters, extern-unit state)
///    so a run can stop and resume bit-identically;
///  - **ActionCache** — the interned key pool, node arena and data pool of
///    rt::ActionCache, reloaded for warm-start replay.
///
/// Layout (all integers little-endian):
///
///   header:   magic "FACSNAP2" (8) | format version u32 | payload kind u32
///             | compat key u64 | section count u32 | header CRC-32 u32
///   sections: tag u32 | payload length u64 | payload CRC-32 u32 | payload
///
/// The compat key binds a payload to the exact producer configuration — a
/// hash of the compiled program's ExecPlan fingerprint, the ISA revision,
/// Simulation::Options and the target image digest (Simulation::compatKey).
/// Readers reject on any mismatch, and every parse error is a clean,
/// diagnosable failure — mismatch and corruption degrade to a cold start,
/// never an abort or UB. Loading is strict: the whole file is read and
/// checksummed before a single byte reaches a consumer.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_SNAPSHOT_SNAPSHOT_H
#define FACILE_SNAPSHOT_SNAPSHOT_H

#include "src/snapshot/Serializer.h"

#include <cstdint>
#include <string>
#include <vector>

namespace facile {
namespace snapshot {

/// Bumped whenever the container or any payload layout changes.
inline constexpr uint32_t FormatVersion = 2;

/// What a container holds.
enum class PayloadKind : uint32_t {
  Checkpoint = 1,  ///< full dynamic simulation state
  ActionCache = 2, ///< persistent action cache for warm-start replay
};

/// Section tags (payload framing inside a container).
inline constexpr uint32_t SecSimState = 0x4d495353u;  // "SSIM"
inline constexpr uint32_t SecMemory = 0x4d454d53u;    // "SMEM"
inline constexpr uint32_t SecBranchUnit = 0x55504253u; // "SBPU"
inline constexpr uint32_t SecMemHier = 0x52484d53u;   // "SMHR"
inline constexpr uint32_t SecActionCache = 0x48434153u; // "SACH"

/// One framed payload inside a container.
struct Section {
  uint32_t Tag = 0;
  std::vector<uint8_t> Bytes;
};

/// Why a load failed (Ok means it did not).
enum class LoadStatus {
  Ok,
  IoError,        ///< file missing/unreadable
  BadFormat,      ///< not a snapshot, wrong version, or wrong payload kind
  CompatMismatch, ///< valid container produced under a different config
  Corrupt,        ///< truncated, CRC mismatch, or inconsistent framing
};

/// Human-readable status name for diagnostics.
const char *loadStatusName(LoadStatus St);

/// Serializes \p Sections into one container image.
std::vector<uint8_t> buildContainer(PayloadKind Kind, uint64_t CompatKey,
                                    const std::vector<Section> &Sections);

/// Parses a container image, verifying magic, version, kind, compat key,
/// header CRC and every section CRC before returning any data. On failure
/// \p Out is untouched and \p Err describes the problem.
LoadStatus parseContainer(const uint8_t *Data, size_t Len, PayloadKind Kind,
                          uint64_t CompatKey, std::vector<Section> &Out,
                          std::string &Err);

/// Writes \p Bytes to \p Path atomically-ish (best effort). Returns false
/// with \p Err set on I/O failure.
bool writeFileBytes(const std::string &Path, const std::vector<uint8_t> &Bytes,
                    std::string &Err);

/// Reads the whole file at \p Path. Returns false with \p Err set when the
/// file cannot be opened or read.
bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Out,
                   std::string &Err);

} // namespace snapshot
} // namespace facile

#endif // FACILE_SNAPSHOT_SNAPSHOT_H
