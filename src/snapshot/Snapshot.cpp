//===- Snapshot.cpp - Versioned, checksummed snapshot container ------------===//

#include "src/snapshot/Snapshot.h"

#include <cstdio>

namespace facile {
namespace snapshot {

namespace {

constexpr char Magic[8] = {'F', 'A', 'C', 'S', 'N', 'A', 'P', '2'};
/// magic + version + kind + compat + section count + header crc.
constexpr size_t HeaderSize = 8 + 4 + 4 + 8 + 4 + 4;
/// A container never carries more sections than this; bounds the parse
/// loop against corrupt counts.
constexpr uint32_t MaxSections = 64;

} // namespace

const char *loadStatusName(LoadStatus St) {
  switch (St) {
  case LoadStatus::Ok:
    return "ok";
  case LoadStatus::IoError:
    return "io-error";
  case LoadStatus::BadFormat:
    return "bad-format";
  case LoadStatus::CompatMismatch:
    return "compat-mismatch";
  case LoadStatus::Corrupt:
    return "corrupt";
  }
  return "?";
}

std::vector<uint8_t> buildContainer(PayloadKind Kind, uint64_t CompatKey,
                                    const std::vector<Section> &Sections) {
  Writer W;
  W.bytes(Magic, sizeof(Magic));
  W.u32(FormatVersion);
  W.u32(static_cast<uint32_t>(Kind));
  W.u64(CompatKey);
  W.u32(static_cast<uint32_t>(Sections.size()));
  W.u32(crc32(W.buffer().data(), W.size()));
  for (const Section &S : Sections) {
    W.u32(S.Tag);
    W.u64(S.Bytes.size());
    W.u32(crc32(S.Bytes.data(), S.Bytes.size()));
    W.bytes(S.Bytes.data(), S.Bytes.size());
  }
  return W.take();
}

LoadStatus parseContainer(const uint8_t *Data, size_t Len, PayloadKind Kind,
                          uint64_t CompatKey, std::vector<Section> &Out,
                          std::string &Err) {
  Reader R(Data, Len);
  char M[8] = {};
  R.bytes(M, sizeof(M));
  if (!R.ok() || std::memcmp(M, Magic, sizeof(Magic)) != 0) {
    Err = "not a Facile snapshot (bad magic)";
    return LoadStatus::BadFormat;
  }
  uint32_t Version = R.u32();
  uint32_t FileKind = R.u32();
  uint64_t FileCompat = R.u64();
  uint32_t NumSections = R.u32();
  uint32_t HeaderCrc = R.u32();
  if (!R.ok()) {
    Err = "truncated snapshot header";
    return LoadStatus::Corrupt;
  }
  if (crc32(Data, HeaderSize - 4) != HeaderCrc) {
    Err = "snapshot header checksum mismatch";
    return LoadStatus::Corrupt;
  }
  if (Version != FormatVersion) {
    Err = "unsupported snapshot format version " + std::to_string(Version);
    return LoadStatus::BadFormat;
  }
  if (FileKind != static_cast<uint32_t>(Kind)) {
    Err = "snapshot holds payload kind " + std::to_string(FileKind) +
          ", expected " + std::to_string(static_cast<uint32_t>(Kind));
    return LoadStatus::BadFormat;
  }
  if (FileCompat != CompatKey) {
    Err = "snapshot compatibility key mismatch (stale program, options or "
          "target image)";
    return LoadStatus::CompatMismatch;
  }
  if (NumSections > MaxSections) {
    Err = "implausible section count " + std::to_string(NumSections);
    return LoadStatus::Corrupt;
  }

  std::vector<Section> Sections;
  Sections.reserve(NumSections);
  for (uint32_t I = 0; I != NumSections; ++I) {
    uint32_t Tag = R.u32();
    uint64_t PayloadLen = R.u64();
    uint32_t PayloadCrc = R.u32();
    if (!R.ok() || PayloadLen > R.remaining()) {
      Err = "truncated snapshot section " + std::to_string(I);
      return LoadStatus::Corrupt;
    }
    Section S;
    S.Tag = Tag;
    S.Bytes.resize(static_cast<size_t>(PayloadLen));
    R.bytes(S.Bytes.data(), S.Bytes.size());
    if (!R.ok() || crc32(S.Bytes.data(), S.Bytes.size()) != PayloadCrc) {
      Err = "snapshot section " + std::to_string(I) + " checksum mismatch";
      return LoadStatus::Corrupt;
    }
    Sections.push_back(std::move(S));
  }
  if (!R.atEnd()) {
    Err = "trailing bytes after final snapshot section";
    return LoadStatus::Corrupt;
  }
  Out = std::move(Sections);
  return LoadStatus::Ok;
}

bool writeFileBytes(const std::string &Path, const std::vector<uint8_t> &Bytes,
                    std::string &Err) {
  std::string Tmp = Path + ".tmp";
  std::FILE *File = std::fopen(Tmp.c_str(), "wb");
  if (!File) {
    Err = "cannot open '" + Tmp + "' for writing";
    return false;
  }
  size_t N = Bytes.empty()
                 ? 0
                 : std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  bool CloseOk = std::fclose(File) == 0;
  if (N != Bytes.size() || !CloseOk) {
    std::remove(Tmp.c_str());
    Err = "short write to '" + Tmp + "'";
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    Err = "cannot rename '" + Tmp + "' to '" + Path + "'";
    return false;
  }
  return true;
}

bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Out,
                   std::string &Err) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Err = "cannot open '" + Path + "'";
    return false;
  }
  std::vector<uint8_t> Bytes;
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) != 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  bool ReadOk = std::ferror(File) == 0;
  std::fclose(File);
  if (!ReadOk) {
    Err = "read error on '" + Path + "'";
    return false;
  }
  Out = std::move(Bytes);
  return true;
}

} // namespace snapshot
} // namespace facile
