//===- FastSim.cpp - Hand-coded memoizing out-of-order simulator -----------===//

#include "src/fastsim/FastSim.h"

#include "src/telemetry/Metrics.h"

#include <cassert>
#include <cstring>

using namespace facile;
using namespace facile::fastsim;
using namespace facile::isa;

//===----------------------------------------------------------------------===//
// Pipeline state key
//===----------------------------------------------------------------------===//

bool PipelineState::operator==(const PipelineState &O) const {
  return std::memcmp(this, &O, sizeof(PipelineState)) == 0;
}

uint64_t PipelineState::hash() const {
  return hashBytes(this, sizeof(PipelineState));
}

//===----------------------------------------------------------------------===//
// Decode helpers (mirror isa.fac's classify / dest_reg / src*_reg)
//===----------------------------------------------------------------------===//

PipeCls fastsim::classifyInst(const DecodedInst &Inst) {
  switch (Inst.Cls) {
  case InstClass::IntAlu:
    return PipeCls::Alu;
  case InstClass::IntMul:
    return PipeCls::Mul;
  case InstClass::IntDiv:
    return PipeCls::Div;
  case InstClass::Load:
    return PipeCls::Load;
  case InstClass::Store:
    return PipeCls::Store;
  case InstClass::Branch:
    return PipeCls::Branch;
  case InstClass::Jump:
    return Inst.Op == Opcode::Jalr ? PipeCls::Jalr : PipeCls::Jump;
  case InstClass::Halt:
  case InstClass::Invalid:
    return PipeCls::Halt;
  }
  return PipeCls::Halt;
}

int fastsim::destRegOf(const DecodedInst &Inst) {
  if (!Inst.writesRd())
    return -1;
  return Inst.Rd == 0 ? -1 : Inst.Rd;
}

int fastsim::src1RegOf(const DecodedInst &Inst) {
  if (!Inst.readsRs1() || Inst.Rs1 == 0)
    return -1;
  return Inst.Rs1;
}

int fastsim::src2RegOf(const DecodedInst &Inst) {
  // Stores read their data from the rd slot (see the ISA encoding).
  if (Inst.isStore())
    return Inst.Rd == 0 ? -1 : Inst.Rd;
  if (!Inst.readsRs2() || Inst.Rs2 == 0)
    return -1;
  return Inst.Rs2;
}

//===----------------------------------------------------------------------===//
// FastSim
//===----------------------------------------------------------------------===//

namespace {

constexpr uint8_t OutICacheMiss = 1u << 0;
constexpr uint8_t OutDCacheMiss = 1u << 1;
constexpr uint8_t OutBrTaken = 1u << 2;
constexpr uint8_t OutMispredict = 1u << 3;

} // namespace

FastSim::FastSim(const TargetImage &Image, Options Opts)
    : Image(Image), Opts(Opts) {
  Mem.loadImage(Image);
  Arch = makeInitialState(Image);
  State.Pc = Image.Entry;
}

unsigned FastSim::latencyFor(PipeCls Cls, bool DCacheHit) const {
  switch (Cls) {
  case PipeCls::Mul:
    return PipeConfig::LatMul;
  case PipeCls::Div:
    return PipeConfig::LatDiv;
  case PipeCls::Load:
    return DCacheHit ? PipeConfig::LatLoadHit : PipeConfig::LatLoadMiss;
  default:
    return 1;
  }
}

uint8_t FastSim::execDynamic(uint32_t Pc, PipeCls Cls,
                             const DecodedInst &Inst, uint32_t *NextPc) {
  uint8_t Out = 0;
  // Instruction cache: a miss stalls the front end (mirrors ooo.fac).
  if (MH.accessInst(Pc) > 1) {
    Out |= OutICacheMiss;
    S.Cycles += PipeConfig::IMissPenalty;
  }
  if (Cls == PipeCls::Halt) {
    *NextPc = Pc;
    return Out;
  }
  // Functional execution (program order at fetch, as in FastSim's
  // direct-execution structure).
  Arch.Pc = Pc;
  ExecInfo Info = executeInst(Inst, Arch, Mem);
  *NextPc = Info.NextPc;
  // Data cache.
  if (Cls == PipeCls::Load) {
    if (MH.accessData(Info.MemAddr, /*IsWrite=*/false) > 1)
      Out |= OutDCacheMiss;
  } else if (Cls == PipeCls::Store) {
    // The store's hit/miss outcome is dead in the timing model (as in
    // ooo.fac); the access still updates cache state.
    MH.accessData(Info.MemAddr, /*IsWrite=*/true);
  }
  // Branch predictor.
  if (Cls == PipeCls::Branch) {
    bool Pred = BU.predictDirection(Pc);
    BU.resolveDirection(Pc, Info.Taken);
    if (Info.Taken)
      Out |= OutBrTaken;
    if (Pred != Info.Taken)
      Out |= OutMispredict;
  }
  return Out;
}

bool FastSim::slowCycle(CycleTrace *Rec, const FetchRec *Replayed,
                        size_t ReplayedFetches) {
  const bool Recovering = Replayed != nullptr;

  // --- retire -------------------------------------------------------------
  unsigned Retired = 0;
  for (unsigned R = 0; R != PipeConfig::RetireW; ++R) {
    if (State.Cnt == 0)
      break;
    PipelineState::Slot &Slot = State.Slots[State.Head];
    if (Slot.Stage != 3)
      break;
    Slot = PipelineState::Slot();
    State.Head = static_cast<uint8_t>((State.Head + 1) % PipeConfig::W);
    --State.Cnt;
    ++Retired;
  }
  S.Retired += Retired;
  if (Rec)
    Rec->RetireN = static_cast<uint8_t>(Rec->RetireN + Retired);

  // --- wakeup / select -------------------------------------------------------
  // Wakeup computes readiness for every waiting entry (mirrors ooo.fac);
  // select issues the oldest IssueW ready ones.
  unsigned Issued = 0;
  for (unsigned K = 0; K != State.Cnt; ++K) {
    unsigned Idx = (State.Head + K) % PipeConfig::W;
    PipelineState::Slot &Slot = State.Slots[Idx];
    if (Slot.Stage != 1)
      continue;
    bool Ready = true;
    for (unsigned J = 0; J != K && Ready; ++J) {
      const PipelineState::Slot &Older =
          State.Slots[(State.Head + J) % PipeConfig::W];
      if (Older.Stage != 3 && Older.Dst >= 0 &&
          (Older.Dst == Slot.S1 || Older.Dst == Slot.S2))
        Ready = false;
    }
    if (Ready && Issued < PipeConfig::IssueW) {
      Slot.Stage = 2;
      ++Issued;
    }
  }

  // --- execute ---------------------------------------------------------------
  for (unsigned K = 0; K != State.Cnt; ++K) {
    PipelineState::Slot &Slot = State.Slots[(State.Head + K) % PipeConfig::W];
    if (Slot.Stage == 2) {
      --Slot.Lat;
      if (Slot.Lat <= 0)
        Slot.Stage = 3;
    }
  }

  // --- fetch -------------------------------------------------------------------
  bool NextPcDynamic = false;
  size_t FetchIdx = 0;
  if (State.Redirect > 0) {
    --State.Redirect;
  } else {
    for (unsigned F = 0; F != PipeConfig::FetchW;) {
      if (State.FetchHalt || State.Cnt >= PipeConfig::W)
        break;
      uint32_t Pc = State.Pc;
      if (!Image.isTextAddr(Pc)) {
        State.FetchHalt = 1;
        break;
      }
      DecodedInst Inst = decode(Image.fetch(Pc));
      PipeCls Cls = classifyInst(Inst);

      uint32_t NextPc = Pc + 4;
      uint8_t Out;
      if (Recovering && FetchIdx < ReplayedFetches) {
        // Dynamic work already performed by the fast simulator before the
        // miss: take the recorded outcomes, perform no side effects.
        Out = Replayed[FetchIdx].Outcome;
        NextPc = Replayed[FetchIdx].NextPc;
      } else {
        Out = execDynamic(Pc, Cls, Inst, &NextPc);
      }
      if (Rec)
        Rec->Fetches.push_back({Pc, Out, NextPc, Inst, Cls});
      ++FetchIdx;

      if (Cls == PipeCls::Halt) {
        State.FetchHalt = 1;
        break;
      }

      // Enqueue into the window.
      unsigned Tail = (State.Head + State.Cnt) % PipeConfig::W;
      PipelineState::Slot &Slot = State.Slots[Tail];
      Slot.Stage = 1;
      Slot.Cls = static_cast<uint8_t>(Cls);
      Slot.Dst = static_cast<int8_t>(destRegOf(Inst));
      Slot.S1 = static_cast<int8_t>(src1RegOf(Inst));
      Slot.S2 = static_cast<int8_t>(src2RegOf(Inst));
      Slot.Lat = static_cast<int8_t>(
          latencyFor(Cls, !(Out & OutDCacheMiss)));
      ++State.Cnt;

      // Control flow (mirrors ooo.fac: the fetch pc is re-derived from
      // decode except for the indirect jump).
      if (Cls == PipeCls::Branch) {
        State.Pc = (Out & OutBrTaken) ? relativeTarget(Inst, Pc) : Pc + 4;
        if (Out & OutMispredict) {
          State.Redirect = PipeConfig::BrPenalty;
          break;
        }
      } else if (Cls == PipeCls::Jump) {
        State.Pc = relativeTarget(Inst, Pc);
      } else if (Cls == PipeCls::Jalr) {
        State.Redirect = 2;
        State.Pc = NextPc;
        NextPcDynamic = true;
        break;
      } else {
        State.Pc = Pc + 4;
      }
      ++F;
    }
  }

  // --- drain / end of simulation -----------------------------------------------
  bool HaltNow = State.FetchHalt && State.Cnt == 0;
  if (HaltNow)
    Halted = true;

  S.Cycles += 1;

  if (Rec) {
    if (NextPcDynamic)
      Rec->NextPcDynamic = true;
    if (HaltNow)
      Rec->SimHalted = true;
  }
  return FetchIdx != 0;
}

void FastSim::slowQuantum(CycleTrace *Rec, const FetchRec *Replayed,
                          size_t ReplayedFetches) {
  // One step simulates until the end of a cycle that performs dynamic
  // behaviour (paper §2.2); the cap bounds trace size on long stalls.
  for (;;) {
    bool Dyn = slowCycle(Rec, Replayed, ReplayedFetches);
    if (Rec)
      ++Rec->CyclesN;
    if (Dyn || Halted)
      break;
    if (Rec && Rec->CyclesN >= 32)
      break;
    if (!Rec)
      break; // unrecorded runs step one cycle at a time
  }
  if (Rec)
    Rec->Next = State;
}

bool FastSim::fastCycle(Entry &E) {
  assert(!E.Traces.empty() && "entries always hold at least one trace");
  size_t TIdx = 0;
  const CycleTrace *T = &E.Traces[0];

  // Working record of the dynamic outcomes actually observed, used to
  // switch traces or to hand the prefix to miss recovery. At most FetchW
  // instructions fetch per cycle, so a stack array keeps the replay hot
  // path allocation-free.
  FetchRec Actual[PipeConfig::FetchW];
  size_t ActualN = 0;
  uint32_t LastNextPc = 0;
  for (size_t I = 0; I != T->Fetches.size(); ++I) {
    const FetchRec &F = T->Fetches[I];
    uint32_t NextPc = F.Pc + 4;
    uint8_t Out = execDynamic(F.Pc, F.Cls, F.Inst, &NextPc);
    assert(ActualN < PipeConfig::FetchW && "over-long trace");
    Actual[ActualN++] = {F.Pc, Out, NextPc, F.Inst, F.Cls};
    LastNextPc = NextPc;
    if (Out == F.Outcome)
      continue;

    // Dynamic result test failed on this trace; look for a sibling trace
    // sharing the observed prefix (the action cache's per-path successors).
    const CycleTrace *Switched = nullptr;
    for (size_t UIdx = 0; UIdx != E.Traces.size(); ++UIdx) {
      const CycleTrace &U = E.Traces[UIdx];
      if (U.Fetches.size() <= I)
        continue;
      bool PrefixOk = true;
      for (size_t K = 0; K <= I && PrefixOk; ++K)
        PrefixOk = U.Fetches[K].Pc == Actual[K].Pc &&
                   U.Fetches[K].Outcome == Actual[K].Outcome;
      if (PrefixOk) {
        Switched = &U;
        TIdx = UIdx;
        break;
      }
    }
    if (Switched) {
      T = Switched;
      continue;
    }

    // Action cache miss: recover with the slow simulator. Retire and
    // cycle counters for the quantum are accounted by the recovery run
    // (the replay attempt had not yet credited them).
    ++S.Misses;
    CycleTrace NewTrace;
    slowQuantum(&NewTrace, Actual, ActualN);
    CacheBytes += sizeof(CycleTrace) +
                  NewTrace.Fetches.size() * sizeof(FetchRec);
    E.Traces.push_back(std::move(NewTrace));
    return false;
  }

  // Full replay: install the successor pipeline state and credit the
  // whole quantum (several bookkeeping cycles may be skipped at once —
  // the paper's "increment the simulated cycles by 6").
  State = T->Next;
  if (T->NextPcDynamic)
    State.Pc = LastNextPc;
  if (T->SimHalted)
    Halted = true;
  S.Cycles += T->CyclesN;
  S.Retired += T->RetireN;
  S.RetiredFast += T->RetireN;

  // INDEX chaining: when the successor state is the trace's recorded Next
  // (i.e. no dynamic pc patch), follow the resolved entry pointer next
  // cycle and skip the hash lookup entirely (paper Figure 9's
  // INDEX_ACTION: "it is faster to follow the link to the next entry").
  if (!T->NextPcDynamic && !T->SimHalted) {
    CycleTrace &MutT = E.Traces[TIdx];
    if (!MutT.NextEntry) {
      auto It = Cache.find(State);
      if (It != Cache.end())
        MutT.NextEntry = It->second.get();
    }
    ChainNext = MutT.NextEntry;
  }
  return true;
}

void FastSim::stepCycle() {
  ++S.Steps;
  if (!Opts.Memoize) {
    slowCycle(nullptr, nullptr, 0);
    return;
  }
  Entry *E;
  if (ChainNext) {
    E = ChainNext;
    ChainNext = nullptr;
  } else {
    std::unique_ptr<Entry> &Slot = Cache[State];
    if (!Slot) {
      Slot = std::make_unique<Entry>();
      CacheBytes += sizeof(PipelineState) + sizeof(Entry) + 64;
      CycleTrace Rec;
      slowQuantum(&Rec, nullptr, 0);
      CacheBytes +=
          sizeof(CycleTrace) + Rec.Fetches.size() * sizeof(FetchRec);
      Slot->Traces.push_back(std::move(Rec));
      S.CacheBytes = CacheBytes;
      if (CacheBytes > Opts.CacheBudgetBytes) {
        Cache.clear();
        CacheBytes = 0;
        ChainNext = nullptr;
        ++S.Clears;
      }
      return;
    }
    E = Slot.get();
  }
  if (fastCycle(*E))
    ++S.FastSteps;
  S.CacheBytes = CacheBytes;
  if (CacheBytes > Opts.CacheBudgetBytes) {
    Cache.clear();
    CacheBytes = 0;
    ChainNext = nullptr;
    ++S.Clears;
  }
}

uint64_t FastSim::run(uint64_t MaxInstrs) {
  while (!Halted && S.Retired < MaxInstrs)
    stepCycle();
  return S.Retired;
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

void FastSim::Stats::exportMetrics(telemetry::MetricSink &Sink) const {
  Sink.counter("cycles", Cycles);
  Sink.counter("retired", Retired);
  Sink.counter("retired_fast", RetiredFast);
  Sink.counter("steps", Steps);
  Sink.counter("fast_steps", FastSteps);
  Sink.counter("misses", Misses);
  Sink.counter("clears", Clears);
  Sink.counter("cache_bytes", CacheBytes);
  Sink.gauge("fast_forwarded_pct", fastForwardedPct());
}

void FastSim::registerMetrics(telemetry::MetricsRegistry &R) const {
  R.add("", [this](telemetry::MetricSink &Sink) { S.exportMetrics(Sink); });
  BU.registerMetrics(R, "branch");
  MH.registerMetrics(R, "mem");
}
