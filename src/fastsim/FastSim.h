//===- FastSim.h - Hand-coded memoizing out-of-order simulator --*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FastSim analogue (paper §6.1): a hand-written C++ out-of-order
/// simulator with hand-implemented fast-forwarding, used as the
/// performance reference for the compiler-generated Facile simulator. It
/// implements *exactly* the same microarchitecture as src/sims/ooo.fac —
/// same window, latencies, predictor and cache models, same stage ordering
/// — so the two produce identical simulated cycle counts (validated by
/// tests), while this version's hand-specialised action cache shows what a
/// human implementer can do: a packed ~90-byte pipeline-state key (the
/// paper compresses its instruction queue below 40 bytes, §2.2) and
/// flat per-cycle traces instead of interpreted action lists.
///
/// Memoization structure: the key is the packed pipeline state; a cache
/// entry holds one or more *cycle traces* — the dynamic outcome bits
/// (I-cache and D-cache hit/miss, branch direction, mispredict) of every
/// instruction fetched that cycle plus the successor pipeline state.
/// Replay re-executes only the dynamic work (functional semantics, cache
/// and predictor calls), verifies the outcome bits, and installs the
/// successor state, skipping retirement/wakeup/select/execute bookkeeping
/// entirely. A mismatched outcome is an action-cache miss: the slow path
/// re-runs the cycle in recovery mode, skipping the already-performed
/// dynamic operations (paper §4.3).
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_FASTSIM_FASTSIM_H
#define FACILE_FASTSIM_FASTSIM_H

#include "src/isa/TargetImage.h"
#include "src/loader/TargetMemory.h"
#include "src/support/Hashing.h"
#include "src/uarch/Caches.h"
#include "src/uarch/FunctionalCore.h"
#include "src/uarch/Predictors.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace facile {

namespace telemetry {
class MetricSink;
class MetricsRegistry;
} // namespace telemetry

namespace fastsim {

/// Microarchitecture parameters — must mirror src/sims/ooo.fac.
struct PipeConfig {
  static constexpr unsigned W = 32;
  static constexpr unsigned FetchW = 4;
  static constexpr unsigned IssueW = 4;
  static constexpr unsigned RetireW = 4;
  static constexpr unsigned LatMul = 3;
  static constexpr unsigned LatDiv = 12;
  static constexpr unsigned LatLoadHit = 2;
  static constexpr unsigned LatLoadMiss = 10;
  static constexpr unsigned BrPenalty = 6;
  static constexpr unsigned IMissPenalty = 8;
};

/// The run-time static pipeline state — the action-cache key. Packed so
/// that hashing/compares touch ~90 bytes (the hand-coded advantage the
/// paper attributes to FastSim's compressed instruction queue).
struct PipelineState {
  struct Slot {
    uint8_t Stage = 0; ///< 0 empty, 1 waiting, 2 executing, 3 done
    int8_t Lat = 0;
    uint8_t Cls = 0;
    int8_t Dst = -1;
    int8_t S1 = -1;
    int8_t S2 = -1;
  };
  Slot Slots[PipeConfig::W];
  uint32_t Pc = 0;
  uint8_t Head = 0;
  uint8_t Cnt = 0;
  uint8_t Redirect = 0;
  uint8_t FetchHalt = 0;

  bool operator==(const PipelineState &O) const;
  uint64_t hash() const;
};

/// Instruction classes, mirroring isa.fac's CLS_* constants.
enum class PipeCls : uint8_t {
  Alu = 0,
  Mul = 1,
  Div = 2,
  Load = 3,
  Store = 4,
  Branch = 5,
  Jump = 6,
  Jalr = 7,
  Halt = 8,
};

/// Classifies a decoded instruction (same mapping as isa.fac classify()).
PipeCls classifyInst(const isa::DecodedInst &Inst);
/// Dependence registers, -1 for none; r0 never participates.
int destRegOf(const isa::DecodedInst &Inst);
int src1RegOf(const isa::DecodedInst &Inst);
int src2RegOf(const isa::DecodedInst &Inst);

/// The hand-coded fast-forwarding simulator.
class FastSim {
public:
  struct Options {
    bool Memoize = true;
    size_t CacheBudgetBytes = 256u << 20;
  };

  struct Stats {
    uint64_t Cycles = 0;
    uint64_t Retired = 0;
    uint64_t RetiredFast = 0;
    uint64_t Steps = 0;     ///< cycles simulated
    uint64_t FastSteps = 0; ///< cycles replayed from the cache
    uint64_t Misses = 0;
    uint64_t Clears = 0;
    uint64_t CacheBytes = 0;

    double fastForwardedPct() const {
      return Retired == 0 ? 0.0
                          : 100.0 * static_cast<double>(RetiredFast) /
                                static_cast<double>(Retired);
    }

    /// Pushes the counters plus fast_forwarded_pct into \p Sink.
    void exportMetrics(telemetry::MetricSink &Sink) const;
  };

  FastSim(const isa::TargetImage &Image, Options Opts);
  explicit FastSim(const isa::TargetImage &Image)
      : FastSim(Image, Options()) {}

  /// Simulates one processor cycle.
  void stepCycle();

  /// Runs until the pipeline drains after halt, or \p MaxInstrs retire.
  uint64_t run(uint64_t MaxInstrs);

  bool halted() const { return Halted; }
  const Stats &stats() const { return S; }
  const ArchState &archState() const { return Arch; }
  TargetMemory &memory() { return Mem; }
  const BranchUnit &branchUnit() const { return BU; }
  const MemoryHierarchy &memHierarchy() const { return MH; }

  /// Registers the canonical metric groups: the Stats counters at the top
  /// level, then "branch" and "mem". The registry must not outlive this
  /// simulator.
  void registerMetrics(telemetry::MetricsRegistry &R) const;

private:
  struct Entry;

  /// Outcome bits of one fetched instruction (the dynamic results). The
  /// decoded instruction is memoized too (pre-decoding, as in SimICS) so
  /// replay skips the decoder.
  struct FetchRec {
    uint32_t Pc = 0;
    uint8_t Outcome = 0; ///< bit0 icache miss, bit1 dcache miss,
                         ///< bit2 branch taken, bit3 mispredict
    uint32_t NextPc = 0; ///< dynamic successor pc (used by jalr recovery)
    isa::DecodedInst Inst;
    PipeCls Cls = PipeCls::Halt;
  };

  /// One recorded behaviour of a *step quantum* for a given key. As in the
  /// paper (§2.2), a step simulates "until the end of a processor cycle
  /// that performs some dynamic behavior": pure-bookkeeping cycles (fetch
  /// stalls, drain) are absorbed, so one replay can skip several cycles at
  /// once (Figure 3's "increment the simulated cycles by 6").
  struct CycleTrace {
    std::vector<FetchRec> Fetches; ///< dynamic work of the final cycle
    uint16_t CyclesN = 0;          ///< cycles covered by this quantum
    uint8_t RetireN = 0;           ///< instructions retired over the quantum
    bool NextPcDynamic = false; ///< successor pc comes from a jalr target
    PipelineState Next;
    bool SimHalted = false;
    /// Lazily resolved link to the entry keyed by Next — the paper's
    /// INDEX_ACTION chain, which lets steady-state replay follow pointers
    /// instead of hashing the pipeline state every cycle.
    Entry *NextEntry = nullptr;
  };

  struct Entry {
    std::vector<CycleTrace> Traces;
  };

  struct KeyHash {
    size_t operator()(const PipelineState &K) const {
      return static_cast<size_t>(K.hash());
    }
  };

  /// Executes one cycle of the full model. Returns true when the cycle
  /// performed dynamic work (fetched instructions). \p Replayed, when
  /// non-null, gives outcomes for the first \p ReplayedFetches
  /// instructions whose dynamic effects already happened (miss recovery).
  /// \p Rec, when non-null, accumulates the recorded trace.
  bool slowCycle(CycleTrace *Rec, const FetchRec *Replayed,
                 size_t ReplayedFetches);

  /// Runs one step quantum in the slow simulator: cycles until one
  /// performs dynamic behaviour (or the machine halts), recording into
  /// \p Rec when non-null.
  void slowQuantum(CycleTrace *Rec, const FetchRec *Replayed,
                   size_t ReplayedFetches);

  /// Attempts to replay the cycle from \p E. Returns true on full replay.
  bool fastCycle(Entry &E);

  /// Dynamic per-instruction work: functional execution + cache/predictor.
  /// Returns the outcome bits and the architectural successor pc.
  uint8_t execDynamic(uint32_t Pc, PipeCls Cls, const isa::DecodedInst &Inst,
                      uint32_t *NextPc);

  unsigned latencyFor(PipeCls Cls, bool DCacheHit) const;

  const isa::TargetImage &Image;
  Options Opts;
  TargetMemory Mem;
  ArchState Arch;
  BranchUnit BU;
  MemoryHierarchy MH;

  PipelineState State;
  std::unordered_map<PipelineState, std::unique_ptr<Entry>, KeyHash> Cache;
  size_t CacheBytes = 0;
  Entry *ChainNext = nullptr; ///< entry for the current State, if chained

  bool Halted = false;
  bool InFast = false;
  Stats S;
};

} // namespace fastsim
} // namespace facile

#endif // FACILE_FASTSIM_FASTSIM_H
