//===- Profiler.h - Hot-action replay profiler ------------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attributes fast-replay work to the actions (dynamic basic blocks) that
/// consume it: per action id, how many node visits, replayed dynamic
/// instructions and placeholder bytes the replay executed, aggregated over
/// *sampled* steps. Sampling keeps the profiler cheap enough to leave on:
/// with period P only every P-th replayed step is measured, and the
/// per-node accounting is compiled into a separate replay-loop
/// instantiation (see Simulation::runFastImpl) so unsampled steps and
/// unprofiled runs execute the exact original loop.
///
/// The result surfaces two ways: a "profile" block in statsJson() /
/// --metrics output, and the `facilesim --top-actions=N` table that ranks
/// actions by replayed dynamic instructions.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_TELEMETRY_PROFILER_H
#define FACILE_TELEMETRY_PROFILER_H

#include "src/telemetry/Metrics.h"

#include <cstdint>
#include <vector>

namespace facile {
namespace telemetry {

class ActionProfiler {
public:
  /// \p NumActions sizes the per-action table; ids at or above it are
  /// dropped (defensive: unguarded replay trusts the cache's ids).
  /// \p SamplePeriod of 1 profiles every replayed step.
  explicit ActionProfiler(uint32_t NumActions, uint32_t SamplePeriod = 1)
      : Rows(NumActions), Period(SamplePeriod == 0 ? 1 : SamplePeriod) {}

  bool enabled() const { return Enabled; }
  void setEnabled(bool E) { Enabled = E; }
  uint32_t period() const { return Period; }

  /// Per-step sampling decision, called once per memoized step by the
  /// runtime. True means this step's replay should call noteNode/noteStep.
  bool armStep() {
    if (!Enabled)
      return false;
    return ++StepCounter % Period == 0;
  }

  /// One replayed node: \p Instrs dynamic instructions executed, \p Words
  /// placeholder words consumed.
  void noteNode(uint32_t ActionId, uint64_t Instrs, uint64_t Words) {
    if (ActionId >= Rows.size())
      return;
    Row &R = Rows[ActionId];
    ++R.Nodes;
    R.Instrs += Instrs;
    R.Bytes += Words * 8;
  }

  /// Closes one sampled step: \p Nodes walked, \p Replayed true when the
  /// step fully replayed (false: it missed into recovery).
  void noteStep(uint64_t Nodes, bool Replayed) {
    ++SampledSteps;
    if (Replayed)
      ++SampledReplays;
    SpanNodes.record(Nodes);
  }

  struct Entry {
    uint32_t ActionId = 0;
    uint64_t Nodes = 0;  ///< node visits attributed to the action
    uint64_t Instrs = 0; ///< replayed dynamic instructions
    uint64_t Bytes = 0;  ///< placeholder bytes consumed
  };

  /// The \p N hottest actions by replayed dynamic instructions,
  /// descending (ties broken by bytes, then id for determinism).
  std::vector<Entry> top(size_t N) const;

  uint64_t sampledSteps() const { return SampledSteps; }
  uint64_t sampledReplays() const { return SampledReplays; }
  const Histogram &stepNodes() const { return SpanNodes; }

  /// Exports the profile: period, sampled step counts, the per-step node
  /// histogram, and the top-\p TopN actions as an array.
  void exportMetrics(MetricSink &Sink, size_t TopN = 8) const;
  void registerMetrics(MetricsRegistry &R, std::string Group,
                       size_t TopN = 8) const {
    R.add(std::move(Group),
          [this, TopN](MetricSink &S) { exportMetrics(S, TopN); });
  }

  void reset();

private:
  struct Row {
    uint64_t Nodes = 0;
    uint64_t Instrs = 0;
    uint64_t Bytes = 0;
  };

  std::vector<Row> Rows;
  uint32_t Period;
  bool Enabled = true;
  uint64_t StepCounter = 0;
  uint64_t SampledSteps = 0;
  uint64_t SampledReplays = 0;
  Histogram SpanNodes; ///< nodes walked per sampled step
};

} // namespace telemetry
} // namespace facile

#endif // FACILE_TELEMETRY_PROFILER_H
