//===- Metrics.cpp - Metrics registry and export sinks -----------------------===//

#include "src/telemetry/Metrics.h"

#include <cstdio>

using namespace facile;
using namespace facile::telemetry;

void JsonMetricSink::histogram(std::string_view Name, const Histogram &H) {
  W.objectField(Name)
      .field("count", H.Count)
      .field("sum", H.Sum)
      .field("min", H.Count == 0 ? 0 : H.Min)
      .field("max", H.Max)
      .field("mean", H.mean());
  W.objectField("buckets");
  for (unsigned B = 0; B != 65; ++B) {
    if (H.Buckets[B] == 0)
      continue;
    char Key[24];
    std::snprintf(Key, sizeof(Key), "%llu",
                  static_cast<unsigned long long>(Histogram::bucketLo(B)));
    W.field(Key, H.Buckets[B]);
  }
  W.endObject(); // buckets
  W.endObject(); // the histogram object
}
