//===- Trace.h - Ring-buffered Chrome trace-event tracer --------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An execution tracer whose output loads directly into Chrome's
/// about:tracing / Perfetto: spans (emitted as matched "B"/"E" event
/// pairs) for slow-record vs. fast-replay step batches, instants ("i")
/// for one-shot happenings — cache evictions, structured faults, bypass
/// trips, snapshot loads and saves.
///
/// Discipline (the same epoch-gating spirit as the guarded replay's
/// verification marks): the *disabled* tracer costs the runtime exactly
/// one pointer test per step — the Simulation holds an EventTracer* that
/// is null until a host attaches one, and every hook hides behind that
/// branch. Enabled tracing reads the clock only at span *transitions*
/// (consecutive same-engine steps merge into one span), so a memoized
/// steady state costs one timestamp per slow/fast alternation, not per
/// step.
///
/// Storage is a fixed-capacity ring of POD events; when full, the oldest
/// events are dropped (Dropped counts them) so a multi-billion-step run
/// can keep tracing and flush the interesting tail on demand. Category,
/// name and argument-name strings must be string literals (or otherwise
/// outlive the tracer): events store the pointers, not copies.
///
//===----------------------------------------------------------------------===//

#ifndef FACILE_TELEMETRY_TRACE_H
#define FACILE_TELEMETRY_TRACE_H

#include "src/support/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace facile {
namespace telemetry {

class EventTracer {
public:
  /// \p Capacity is the ring size in events (minimum 16).
  explicit EventTracer(size_t Capacity = 1u << 16);

  bool enabled() const { return Enabled; }
  /// Toggles collection. Hooks fire only while enabled; the ring is kept.
  void setEnabled(bool E) { Enabled = E; }

  /// Microseconds since this tracer was constructed (the trace timebase).
  uint64_t nowUs() const;

  /// Records a completed span. \p Steps, when nonzero, is attached as the
  /// "steps" argument (the number of simulator steps the span batches).
  /// Spans must be reported in chronological order and must not overlap —
  /// the writer emits B/E pairs in arrival order.
  void span(const char *Cat, const char *Name, uint64_t StartUs,
            uint64_t EndUs, uint64_t Steps = 0);

  /// Records an instant event at now (or \p AtUs when given). \p ArgName /
  /// \p Arg attach one integer argument when ArgName is non-null.
  void instant(const char *Cat, const char *Name, const char *ArgName = nullptr,
               uint64_t Arg = 0);
  void instantAt(const char *Cat, const char *Name, uint64_t AtUs,
                 const char *ArgName = nullptr, uint64_t Arg = 0);

  size_t size() const { return Count; }
  uint64_t dropped() const { return Dropped; }
  void clear() {
    Head = Count = 0;
    Dropped = 0;
  }

  /// Writes the buffered events as a Chrome trace-event object:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}. Spans become "B"/"E"
  /// pairs, instants "i"; all on pid 1 / tid 1.
  void writeTo(json::Writer &W) const;

  /// Serializes writeTo() into a string.
  std::string toJson() const;

  /// Writes the trace to \p Path. On failure returns false with a
  /// diagnostic in \p Err when given.
  bool writeFile(const std::string &Path, std::string *Err = nullptr) const;

private:
  struct Event {
    const char *Cat;
    const char *Name;
    const char *ArgName; ///< null: no argument
    uint64_t Ts;         ///< us; span start or instant time
    uint64_t Dur;        ///< span duration in us (spans only)
    uint64_t Arg;        ///< span: batched steps; instant: ArgName's value
    uint8_t Kind;        ///< 0 span, 1 instant
  };

  void push(const Event &E);
  const Event &at(size_t I) const {
    return Ring[(Head + I) % Ring.size()];
  }

  std::vector<Event> Ring;
  size_t Head = 0;  ///< index of the oldest event
  size_t Count = 0; ///< live events in the ring
  uint64_t Dropped = 0;
  bool Enabled = true;
  uint64_t Epoch; ///< steady-clock ns at construction
};

} // namespace telemetry
} // namespace facile

#endif // FACILE_TELEMETRY_TRACE_H
