//===- Metrics.h - Metrics registry and export sinks ------------*- C++ -*-===//
//
// Part of the Facile reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical statistics-export path. Every subsystem that keeps
/// counters — the simulation runtime, the action cache, the uarch models,
/// the hand-coded simulators — exposes a uniform pair of hooks:
///
///   void exportMetrics(telemetry::MetricSink &Sink) const;
///   void registerMetrics(telemetry::MetricsRegistry &R, group) const;
///
/// exportMetrics pushes the current values into a visitor (MetricSink);
/// registerMetrics installs a provider so a later exportTo() pulls fresh
/// values on demand. A MetricsRegistry is an ordered list of named
/// providers; exporting walks them in registration order, wrapping each
/// named provider in a group. JsonMetricSink renders the walk as one JSON
/// object (nested objects per group) — this is what statsJson() and
/// `facilesim --metrics=<file>` are built on.
///
/// Metric kinds: counters (monotonic uint64), gauges (point-in-time
/// numbers, possibly floating), flags (booleans), text (identity strings)
/// and histograms (log2-bucketed value distributions).
///
//======---------------------------------------------------------------------===//

#ifndef FACILE_TELEMETRY_METRICS_H
#define FACILE_TELEMETRY_METRICS_H

#include "src/support/Json.h"

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace facile {
namespace telemetry {

/// Log2-bucketed distribution: value V lands in bucket floor(log2(V))+1,
/// zero in bucket 0. 64 buckets cover the whole uint64 range.
struct Histogram {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = ~0ull;
  uint64_t Max = 0;
  uint64_t Buckets[65] = {};

  void record(uint64_t V) {
    ++Count;
    Sum += V;
    if (V < Min)
      Min = V;
    if (V > Max)
      Max = V;
    ++Buckets[bucketOf(V)];
  }
  void reset() { *this = Histogram(); }
  double mean() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Count);
  }

  /// Bucket index for \p V: 0 holds exactly zero; bucket B>=1 holds
  /// [2^(B-1), 2^B).
  static unsigned bucketOf(uint64_t V) {
    unsigned B = 0;
    while (V != 0) {
      ++B;
      V >>= 1;
    }
    return B;
  }
  /// Inclusive lower bound of bucket \p B.
  static uint64_t bucketLo(unsigned B) { return B == 0 ? 0 : 1ull << (B - 1); }
};

/// Visitor receiving metric values during an export walk.
class MetricSink {
public:
  virtual ~MetricSink() = default;

  /// Opens/closes a named scope; groups may nest.
  virtual void beginGroup(std::string_view Name) = 0;
  virtual void endGroup() = 0;

  virtual void counter(std::string_view Name, uint64_t V) = 0;
  virtual void gauge(std::string_view Name, double V) = 0;
  virtual void gauge(std::string_view Name, int64_t V) = 0;
  virtual void flag(std::string_view Name, bool V) = 0;
  virtual void text(std::string_view Name, std::string_view V) = 0;
  virtual void histogram(std::string_view Name, const Histogram &H) = 0;
};

/// An ordered registry of metric providers. Providers capture pointers to
/// live subsystems, so the registry must not outlive what registered into
/// it; the intended pattern is a short-lived registry built immediately
/// before an export (see FacileSim::statsJson) or one owned by the same
/// object that owns the subsystems.
class MetricsRegistry {
public:
  using Provider = std::function<void(MetricSink &)>;

  /// Adds a provider. \p Group names the object the provider's metrics are
  /// wrapped in; an empty group exports at the current level (top level of
  /// the walk). Registration order is export order.
  void add(std::string Group, Provider P) {
    Entries.push_back({std::move(Group), std::move(P)});
  }

  /// Walks every provider in registration order.
  void exportTo(MetricSink &Sink) const {
    for (const Entry &E : Entries) {
      if (E.Group.empty()) {
        E.P(Sink);
      } else {
        Sink.beginGroup(E.Group);
        E.P(Sink);
        Sink.endGroup();
      }
    }
  }

  size_t size() const { return Entries.size(); }

private:
  struct Entry {
    std::string Group;
    Provider P;
  };
  std::vector<Entry> Entries;
};

/// Renders an export walk as one JSON object. Groups become nested
/// objects; histograms become {"count","sum","min","max","mean","buckets"}
/// with buckets keyed by their inclusive lower bound.
class JsonMetricSink : public MetricSink {
public:
  JsonMetricSink() { W.beginObject(); }

  void beginGroup(std::string_view Name) override { W.objectField(Name); }
  void endGroup() override { W.endObject(); }
  void counter(std::string_view Name, uint64_t V) override {
    W.field(Name, V);
  }
  void gauge(std::string_view Name, double V) override { W.field(Name, V); }
  void gauge(std::string_view Name, int64_t V) override { W.field(Name, V); }
  void flag(std::string_view Name, bool V) override { W.field(Name, V); }
  void text(std::string_view Name, std::string_view V) override {
    W.field(Name, V);
  }
  void histogram(std::string_view Name, const Histogram &H) override;

  /// Access to the underlying writer, for callers that interleave
  /// non-metric fields (e.g. statsJson splicing a raw sub-object).
  json::Writer &writer() { return W; }

  /// Closes the object and returns the serialized JSON.
  std::string finish() {
    W.endObject();
    return W.take();
  }

private:
  json::Writer W;
};

} // namespace telemetry
} // namespace facile

#endif // FACILE_TELEMETRY_METRICS_H
