//===- Profiler.cpp - Hot-action replay profiler -----------------------------===//

#include "src/telemetry/Profiler.h"

#include <algorithm>
#include <cstdio>

using namespace facile;
using namespace facile::telemetry;

std::vector<ActionProfiler::Entry> ActionProfiler::top(size_t N) const {
  std::vector<Entry> All;
  for (uint32_t Id = 0; Id != Rows.size(); ++Id) {
    const Row &R = Rows[Id];
    if (R.Nodes == 0)
      continue;
    All.push_back({Id, R.Nodes, R.Instrs, R.Bytes});
  }
  std::sort(All.begin(), All.end(), [](const Entry &A, const Entry &B) {
    if (A.Instrs != B.Instrs)
      return A.Instrs > B.Instrs;
    if (A.Bytes != B.Bytes)
      return A.Bytes > B.Bytes;
    return A.ActionId < B.ActionId;
  });
  if (All.size() > N)
    All.resize(N);
  return All;
}

void ActionProfiler::exportMetrics(MetricSink &Sink, size_t TopN) const {
  Sink.flag("enabled", Enabled);
  Sink.counter("sample_period", Period);
  Sink.counter("sampled_steps", SampledSteps);
  Sink.counter("sampled_replays", SampledReplays);
  Sink.histogram("step_nodes", SpanNodes);
  // The hottest actions, as a nested group of per-action rows keyed by
  // rank ("0" is hottest). JsonMetricSink renders this as an object; a
  // tabular sink can treat each rank group as one row.
  std::vector<Entry> Top = top(TopN);
  Sink.beginGroup("top_actions");
  for (size_t I = 0; I != Top.size(); ++I) {
    char Rank[24];
    std::snprintf(Rank, sizeof(Rank), "%u", static_cast<unsigned>(I));
    Sink.beginGroup(Rank);
    Sink.counter("action", Top[I].ActionId);
    Sink.counter("nodes", Top[I].Nodes);
    Sink.counter("instrs", Top[I].Instrs);
    Sink.counter("bytes", Top[I].Bytes);
    Sink.endGroup();
  }
  Sink.endGroup();
}

void ActionProfiler::reset() {
  std::fill(Rows.begin(), Rows.end(), Row());
  StepCounter = SampledSteps = SampledReplays = 0;
  SpanNodes.reset();
}
