//===- Trace.cpp - Ring-buffered Chrome trace-event tracer -------------------===//

#include "src/telemetry/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace facile;
using namespace facile::telemetry;

namespace {

uint64_t steadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

EventTracer::EventTracer(size_t Capacity)
    : Ring(std::max<size_t>(Capacity, 16)), Epoch(steadyNs()) {}

uint64_t EventTracer::nowUs() const { return (steadyNs() - Epoch) / 1000; }

void EventTracer::push(const Event &E) {
  if (Count == Ring.size()) {
    Ring[Head] = E;
    Head = (Head + 1) % Ring.size();
    ++Dropped;
    return;
  }
  Ring[(Head + Count) % Ring.size()] = E;
  ++Count;
}

void EventTracer::span(const char *Cat, const char *Name, uint64_t StartUs,
                       uint64_t EndUs, uint64_t Steps) {
  if (!Enabled)
    return;
  if (EndUs < StartUs)
    EndUs = StartUs;
  push({Cat, Name, nullptr, StartUs, EndUs - StartUs, Steps, 0});
}

void EventTracer::instant(const char *Cat, const char *Name,
                          const char *ArgName, uint64_t Arg) {
  instantAt(Cat, Name, nowUs(), ArgName, Arg);
}

void EventTracer::instantAt(const char *Cat, const char *Name, uint64_t AtUs,
                            const char *ArgName, uint64_t Arg) {
  if (!Enabled)
    return;
  push({Cat, Name, ArgName, AtUs, 0, Arg, 1});
}

void EventTracer::writeTo(json::Writer &W) const {
  W.beginObject();
  W.arrayField("traceEvents");
  for (size_t I = 0; I != Count; ++I) {
    const Event &E = at(I);
    if (E.Kind == 0) {
      // Matched begin/end pair. Events arrive in completion order and
      // spans never overlap, so emitting both here keeps ts monotonic.
      W.beginObject()
          .field("ph", "B")
          .field("name", E.Name)
          .field("cat", E.Cat)
          .field("ts", E.Ts)
          .field("pid", uint64_t(1))
          .field("tid", uint64_t(1));
      if (E.Arg != 0)
        W.objectField("args").field("steps", E.Arg).endObject();
      W.endObject();
      W.beginObject()
          .field("ph", "E")
          .field("name", E.Name)
          .field("cat", E.Cat)
          .field("ts", E.Ts + E.Dur)
          .field("pid", uint64_t(1))
          .field("tid", uint64_t(1))
          .endObject();
    } else {
      W.beginObject()
          .field("ph", "i")
          .field("name", E.Name)
          .field("cat", E.Cat)
          .field("ts", E.Ts)
          .field("pid", uint64_t(1))
          .field("tid", uint64_t(1))
          .field("s", "t");
      if (E.ArgName)
        W.objectField("args").field(E.ArgName, E.Arg).endObject();
      W.endObject();
    }
  }
  W.endArray();
  W.field("displayTimeUnit", "ms");
  W.field("droppedEvents", Dropped);
  W.endObject();
}

std::string EventTracer::toJson() const {
  json::Writer W;
  writeTo(W);
  return W.take();
}

bool EventTracer::writeFile(const std::string &Path, std::string *Err) const {
  std::string Json = toJson();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open trace file '" + Path + "' for writing";
    return false;
  }
  size_t N = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = N == Json.size() && std::fputc('\n', F) != EOF;
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok && Err)
    *Err = "short write to trace file '" + Path + "'";
  return Ok;
}
