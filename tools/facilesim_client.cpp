//===- facilesim_client.cpp - facilesimd command-line client ----------------===//
//
// A thin command-line client for a running facilesimd: send one request
// line (or a canned subcommand) and print the response line. Useful for
// poking a daemon by hand and as the scriptable surface for smoke tests.
//
//   facilesim_client --port=7411 ping
//   facilesim_client --port=7411 raw '{"id":1,"verb":"stats"}'
//   facilesim_client --unix=/tmp/facile.sock selftest
//   facilesim_client --port=7411 shutdown
//
// The selftest subcommand drives the same protocol conversation as
// `facilesimd --selftest`, but against an already-running daemon (it does
// not send shutdown).
//
// exit status: 0 ok (response had ok=true), 1 protocol error or failed
// selftest, 2 bad usage, 3 connection error.
//
//===----------------------------------------------------------------------===//

#include "src/server/Client.h"
#include "src/support/ArgParse.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace facile;
using namespace facile::server;

namespace {

/// Sends \p Req through the retry policy, prints the response line,
/// returns 0 when ok=true. Idempotency gating lives in Client::rpcRetry —
/// a raw mutating request without id+session gets exactly one attempt.
int oneShot(Client &C, const std::string &Req) {
  json::Value R;
  std::string Err;
  if (!C.rpcRetry(Req, R, &Err)) {
    std::fprintf(stderr, "facilesim_client: %s (after %u attempt%s)\n",
                 Err.c_str(), C.lastAttempts(),
                 C.lastAttempts() == 1 ? "" : "s");
    return 3;
  }
  std::printf("%s\n", C.lastResponseLine().c_str());
  const json::Value *Ok = R.get("ok");
  return Ok && Ok->boolOr(false) ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Port = 0;
  std::string UnixPath;
  RetryPolicy Policy;
  uint64_t Retries = 4;
  std::vector<std::string> Cmdline;

  support::ArgParse P("facilesim_client");
  P.u64("port", Port, "<n>", "connect to TCP 127.0.0.1:<n>", /*Min=*/0,
        /*Max=*/65535);
  P.str("unix", UnixPath, "<path>", "connect to a Unix-domain socket");
  P.u64("timeout-ms", Policy.TimeoutMs, "<n>",
        "per-call receive timeout (0 = block)");
  P.u64("retries", Retries, "<n>",
        "attempts for retry-safe requests\n(default 4; see "
        "Client::rpcRetry)");
  P.u64("backoff-ms", Policy.BaseBackoffMs, "<n>",
        "base exponential backoff (default 20)");
  P.positionals(Cmdline, "<command> [args]",
                "commands:\n"
                "  ping                liveness round trip\n"
                "  stats               print the daemon stats response\n"
                "  raw '<json-line>'   send one raw request line\n"
                "  selftest            full protocol conversation (no "
                "shutdown)\n"
                "  shutdown            ask the daemon to stop");
  if (int Rc = P.parse(argc, argv); Rc != support::ArgParse::KeepGoing)
    return Rc;
  Policy.MaxAttempts =
      Retries == 0 ? 1 : static_cast<unsigned>(std::min<uint64_t>(
                             Retries, UINT32_MAX));
  if (Cmdline.empty() || (Port == 0 && UnixPath.empty())) {
    P.printUsage(stderr);
    return 2;
  }
  std::string Cmd = Cmdline[0];

  Client C;
  C.setRetryPolicy(Policy);
  std::string Err;
  bool Connected = UnixPath.empty()
                       ? C.connectTcp(static_cast<uint16_t>(Port), &Err)
                       : C.connectUnix(UnixPath, &Err);
  if (!Connected) {
    std::fprintf(stderr, "facilesim_client: %s\n", Err.c_str());
    return 3;
  }

  if (Cmd == "ping")
    return oneShot(C, R"({"id":0,"verb":"ping"})");
  if (Cmd == "stats")
    return oneShot(C, R"({"id":0,"verb":"stats"})");
  if (Cmd == "shutdown")
    return oneShot(C, R"({"id":0,"verb":"shutdown"})");
  if (Cmd == "raw") {
    if (Cmdline.size() < 2) {
      std::fprintf(stderr, "facilesim_client: raw needs a request line\n");
      P.printUsage(stderr);
      return 2;
    }
    return oneShot(C, Cmdline[1]);
  }
  if (Cmd == "selftest") {
    if (!runProtocolSelftest(C, Err, /*SendShutdown=*/false)) {
      std::fprintf(stderr, "facilesim_client: selftest FAILED: %s\n",
                   Err.c_str());
      return 1;
    }
    std::printf("facilesim_client: selftest ok\n");
    return 0;
  }
  std::fprintf(stderr, "facilesim_client: unknown command '%s'\n",
               Cmd.c_str());
  P.printUsage(stderr);
  return 2;
}
