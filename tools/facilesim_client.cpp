//===- facilesim_client.cpp - facilesimd command-line client ----------------===//
//
// A thin command-line client for a running facilesimd: send one request
// line (or a canned subcommand) and print the response line. Useful for
// poking a daemon by hand and as the scriptable surface for smoke tests.
//
//   facilesim_client --port=7411 ping
//   facilesim_client --port=7411 raw '{"id":1,"verb":"stats"}'
//   facilesim_client --unix=/tmp/facile.sock selftest
//   facilesim_client --port=7411 shutdown
//
// The selftest subcommand drives the same protocol conversation as
// `facilesimd --selftest`, but against an already-running daemon (it does
// not send shutdown).
//
// exit status: 0 ok (response had ok=true), 1 protocol error or failed
// selftest, 2 bad usage, 3 connection error.
//
//===----------------------------------------------------------------------===//

#include "src/server/Client.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace facile;
using namespace facile::server;

namespace {

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s (--port=<n> | --unix=<path>) [options] <command>\n"
               "options:\n"
               "  --timeout-ms=<n>    per-call receive timeout (0 = block)\n"
               "  --retries=<n>       attempts for retry-safe requests\n"
               "                      (default 4; see Client::rpcRetry)\n"
               "  --backoff-ms=<n>    base exponential backoff (default 20)\n"
               "commands:\n"
               "  ping                liveness round trip\n"
               "  stats               print the daemon stats response\n"
               "  raw '<json-line>'   send one raw request line\n"
               "  selftest            full protocol conversation (no shutdown)\n"
               "  shutdown            ask the daemon to stop\n",
               Prog);
}

/// Sends \p Req through the retry policy, prints the response line,
/// returns 0 when ok=true. Idempotency gating lives in Client::rpcRetry —
/// a raw mutating request without id+session gets exactly one attempt.
int oneShot(Client &C, const std::string &Req) {
  json::Value R;
  std::string Err;
  if (!C.rpcRetry(Req, R, &Err)) {
    std::fprintf(stderr, "facilesim_client: %s (after %u attempt%s)\n",
                 Err.c_str(), C.lastAttempts(),
                 C.lastAttempts() == 1 ? "" : "s");
    return 3;
  }
  std::printf("%s\n", C.lastResponseLine().c_str());
  const json::Value *Ok = R.get("ok");
  return Ok && Ok->boolOr(false) ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  uint16_t Port = 0;
  std::string UnixPath;
  RetryPolicy Policy;
  int I = 1;
  for (; I < argc && std::strncmp(argv[I], "--", 2) == 0; ++I) {
    if (std::strncmp(argv[I], "--port=", 7) == 0) {
      Port = static_cast<uint16_t>(std::atoi(argv[I] + 7));
    } else if (std::strncmp(argv[I], "--unix=", 7) == 0) {
      UnixPath = argv[I] + 7;
    } else if (std::strncmp(argv[I], "--timeout-ms=", 13) == 0) {
      Policy.TimeoutMs = std::strtoull(argv[I] + 13, nullptr, 10);
    } else if (std::strncmp(argv[I], "--retries=", 10) == 0) {
      Policy.MaxAttempts =
          static_cast<unsigned>(std::strtoul(argv[I] + 10, nullptr, 10));
      if (Policy.MaxAttempts == 0)
        Policy.MaxAttempts = 1;
    } else if (std::strncmp(argv[I], "--backoff-ms=", 13) == 0) {
      Policy.BaseBackoffMs = std::strtoull(argv[I] + 13, nullptr, 10);
    } else if (std::strcmp(argv[I], "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "facilesim_client: bad option '%s'\n", argv[I]);
      return 2;
    }
  }
  if (I >= argc || (Port == 0 && UnixPath.empty())) {
    usage(argv[0]);
    return 2;
  }
  std::string Cmd = argv[I++];

  Client C;
  C.setRetryPolicy(Policy);
  std::string Err;
  bool Connected = UnixPath.empty() ? C.connectTcp(Port, &Err)
                                    : C.connectUnix(UnixPath, &Err);
  if (!Connected) {
    std::fprintf(stderr, "facilesim_client: %s\n", Err.c_str());
    return 3;
  }

  if (Cmd == "ping")
    return oneShot(C, R"({"id":0,"verb":"ping"})");
  if (Cmd == "stats")
    return oneShot(C, R"({"id":0,"verb":"stats"})");
  if (Cmd == "shutdown")
    return oneShot(C, R"({"id":0,"verb":"shutdown"})");
  if (Cmd == "raw") {
    if (I >= argc) {
      std::fprintf(stderr, "facilesim_client: raw needs a request line\n");
      usage(argv[0]);
      return 2;
    }
    return oneShot(C, argv[I]);
  }
  if (Cmd == "selftest") {
    if (!runProtocolSelftest(C, Err, /*SendShutdown=*/false)) {
      std::fprintf(stderr, "facilesim_client: selftest FAILED: %s\n",
                   Err.c_str());
      return 1;
    }
    std::printf("facilesim_client: selftest ok\n");
    return 0;
  }
  std::fprintf(stderr, "facilesim_client: unknown command '%s'\n",
               Cmd.c_str());
  usage(argv[0]);
  return 2;
}
