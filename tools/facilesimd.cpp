//===- facilesimd.cpp - Multi-session simulation server daemon --------------===//
//
// Hosts many concurrent simulation sessions over newline-delimited JSON
// (src/server/). One process compiles each requested simulator once,
// shares the immutable program/image/plan bundle across every session
// created over it, and isolates per-session mutable state — so a fleet of
// experiment clients pays one compilation, not one per run.
//
//   facilesimd --port=7411             # TCP on 127.0.0.1:7411
//   facilesimd --unix=/tmp/facile.sock # Unix-domain socket
//   facilesimd --selftest              # in-process protocol round-trip
//
// The daemon stops on the shutdown verb or SIGINT; SIGTERM triggers a
// graceful drain (finish in-flight work up to --drain-ms, promote dirty
// memoization overlays to the cache store, exit 0). --selftest starts an
// ephemeral in-process server, drives the full protocol conversation
// against it (create, run, inspect, snapshot round-trip with digest match,
// fault + clear-fault, destroy, shutdown) and exits 0 only if every check
// passed — the CI smoke entry point.
//
// exit status: 0 ok, 1 selftest failure, 2 bad usage or socket path owned
// by a live daemon, 3 socket error.
//
//===----------------------------------------------------------------------===//

#include "src/server/Client.h"
#include "src/server/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace facile;
using namespace facile::server;

namespace {

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port=<n>           listen on TCP 127.0.0.1:<n> (0 = ephemeral;\n"
      "                       the bound port is printed on stdout)\n"
      "  --unix=<path>        listen on a Unix-domain socket instead\n"
      "  --workers=<n>        verb-execution worker threads (default 4)\n"
      "  --max-sessions=<n>   concurrent session cap (default 256)\n"
      "  --max-steps-per-request=<n>  run/step bound per request\n"
      "  --cache-store=<dir>  shared action-cache store: memoizing sessions\n"
      "                       attach the newest compatible generation as a\n"
      "                       read-only base (one mapping per store file,\n"
      "                       shared by every session)\n"
      "  --default-deadline-ms=<n>  default per-request deadline on step/run\n"
      "                       (0 = none; requests may override)\n"
      "  --max-queue=<n>      admission control: queued-request cap before\n"
      "                       rejecting with overloaded (default 1024)\n"
      "  --conn-idle-ms=<n>   close connections idle this long (0 = never;\n"
      "                       default 300000)\n"
      "  --session-ttl-ms=<n> spill sessions idle this long to a snapshot,\n"
      "                       restorable via create+resume_token (0 = never)\n"
      "  --drain-ms=<n>       SIGTERM drain deadline (default 5000)\n"
      "  --store-gc-keep=<n>  periodically unlink all but the newest <n>\n"
      "                       store generations per compat key (0 = off)\n"
      "  --max-overlay-mb=<n> LRU bound on aggregate session overlay bytes\n"
      "                       (0 = unbounded)\n"
      "  --selftest           run the protocol self-test in-process, exit\n"
      "\n"
      "exit status: 0 ok, 1 selftest failure, 2 bad usage or socket owned\n"
      "by a live daemon, 3 socket error\n",
      Prog);
}

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End != S && *End == '\0';
}

FacileServer *SignalServer = nullptr;

void onSignal(int Sig) {
  // Both paths are async-signal-safe: each only stores an atomic flag.
  if (!SignalServer)
    return;
  if (Sig == SIGTERM)
    SignalServer->requestDrain(); // graceful: finish, promote, exit 0
  else
    SignalServer->requestShutdown();
}

int runSelftest() {
  ServerOptions Opts;
  Opts.Workers = 2;
  FacileServer Server(std::move(Opts));
  std::string Err;
  if (!Server.start(&Err)) {
    std::fprintf(stderr, "facilesimd: selftest start failed: %s\n",
                 Err.c_str());
    return 3;
  }
  Client C;
  if (!C.connectTcp(Server.port(), &Err)) {
    std::fprintf(stderr, "facilesimd: selftest connect failed: %s\n",
                 Err.c_str());
    return 3;
  }
  bool Ok = runProtocolSelftest(C, Err, /*SendShutdown=*/true);
  C.close();
  Server.wait();
  if (!Ok) {
    std::fprintf(stderr, "facilesimd: selftest FAILED: %s\n", Err.c_str());
    return 1;
  }
  std::printf("facilesimd: selftest ok\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  ServerOptions Opts;
  bool Selftest = false;
  bool HaveEndpoint = false;

  for (int I = 1; I < argc; ++I) {
    const char *A = argv[I];
    uint64_t N;
    if (std::strncmp(A, "--port=", 7) == 0 && parseU64(A + 7, N) &&
        N <= 65535) {
      Opts.TcpPort = static_cast<uint16_t>(N);
      HaveEndpoint = true;
    } else if (std::strncmp(A, "--unix=", 7) == 0) {
      Opts.UnixPath = A + 7;
      HaveEndpoint = true;
    } else if (std::strncmp(A, "--workers=", 10) == 0 && parseU64(A + 10, N) &&
               N >= 1 && N <= 256) {
      Opts.Workers = static_cast<unsigned>(N);
    } else if (std::strncmp(A, "--max-sessions=", 15) == 0 &&
               parseU64(A + 15, N) && N >= 1) {
      Opts.MaxSessions = static_cast<unsigned>(N);
    } else if (std::strncmp(A, "--max-steps-per-request=", 24) == 0 &&
               parseU64(A + 24, N) && N >= 1) {
      Opts.MaxStepsPerRequest = N;
    } else if (std::strncmp(A, "--cache-store=", 14) == 0) {
      Opts.CacheStorePath = A + 14;
    } else if (std::strncmp(A, "--default-deadline-ms=", 22) == 0 &&
               parseU64(A + 22, N)) {
      Opts.DefaultDeadlineMs = N;
    } else if (std::strncmp(A, "--max-queue=", 12) == 0 && parseU64(A + 12, N) &&
               N >= 1) {
      Opts.MaxQueueDepth = static_cast<uint32_t>(N);
    } else if (std::strncmp(A, "--conn-idle-ms=", 15) == 0 &&
               parseU64(A + 15, N)) {
      Opts.ConnIdleTimeoutMs = N;
    } else if (std::strncmp(A, "--session-ttl-ms=", 17) == 0 &&
               parseU64(A + 17, N)) {
      Opts.SessionIdleTtlMs = N;
    } else if (std::strncmp(A, "--drain-ms=", 11) == 0 && parseU64(A + 11, N)) {
      Opts.DrainDeadlineMs = N;
    } else if (std::strncmp(A, "--store-gc-keep=", 16) == 0 &&
               parseU64(A + 16, N)) {
      Opts.StoreGcKeep = N;
    } else if (std::strncmp(A, "--max-overlay-mb=", 17) == 0 &&
               parseU64(A + 17, N)) {
      Opts.MaxOverlayBytes = static_cast<size_t>(N) << 20;
    } else if (std::strcmp(A, "--selftest") == 0) {
      Selftest = true;
    } else if (std::strcmp(A, "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "facilesimd: bad argument '%s'\n", A);
      usage(argv[0]);
      return 2;
    }
  }

  if (Selftest)
    return runSelftest();
  if (!HaveEndpoint) {
    std::fprintf(stderr,
                 "facilesimd: need --port=<n>, --unix=<path> or --selftest\n");
    usage(argv[0]);
    return 2;
  }

  FacileServer Server(std::move(Opts));
  std::string Err;
  if (!Server.start(&Err)) {
    std::fprintf(stderr, "facilesimd: %s\n", Err.c_str());
    // A socket path held by a live daemon is an operator mistake (running
    // twice), not a socket error; stale sockets are rebound silently.
    return Server.addressInUse() ? 2 : 3;
  }
  SignalServer = &Server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // The bound port on stdout lets wrappers use --port=0 ephemeral binds.
  std::printf("facilesimd: listening on %s\n",
              Server.port() != 0
                  ? ("127.0.0.1:" + std::to_string(Server.port())).c_str()
                  : "unix socket");
  std::fflush(stdout);
  Server.wait();
  return 0;
}
