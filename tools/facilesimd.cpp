//===- facilesimd.cpp - Multi-session simulation server daemon --------------===//
//
// Hosts many concurrent simulation sessions over newline-delimited JSON
// (src/server/). One process compiles each requested simulator once,
// shares the immutable program/image/plan bundle across every session
// created over it, and isolates per-session mutable state — so a fleet of
// experiment clients pays one compilation, not one per run.
//
//   facilesimd --port=7411             # TCP on 127.0.0.1:7411
//   facilesimd --unix=/tmp/facile.sock # Unix-domain socket
//   facilesimd --selftest              # in-process protocol round-trip
//
// The daemon stops on the shutdown verb or SIGINT; SIGTERM triggers a
// graceful drain (finish in-flight work up to --drain-ms, promote dirty
// memoization overlays to the cache store, exit 0). --selftest starts an
// ephemeral in-process server, drives the full protocol conversation
// against it (create, run, inspect, snapshot round-trip with digest match,
// fault + clear-fault, destroy, shutdown) and exits 0 only if every check
// passed — the CI smoke entry point.
//
// exit status: 0 ok, 1 selftest failure, 2 bad usage or socket path owned
// by a live daemon, 3 socket error.
//
//===----------------------------------------------------------------------===//

#include "src/server/Client.h"
#include "src/server/Server.h"
#include "src/support/ArgParse.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace facile;
using namespace facile::server;

namespace {

FacileServer *SignalServer = nullptr;

void onSignal(int Sig) {
  // Both paths are async-signal-safe: each only stores an atomic flag.
  if (!SignalServer)
    return;
  if (Sig == SIGTERM)
    SignalServer->requestDrain(); // graceful: finish, promote, exit 0
  else
    SignalServer->requestShutdown();
}

int runSelftest() {
  ServerOptions Opts;
  Opts.Workers = 2;
  FacileServer Server(std::move(Opts));
  std::string Err;
  if (!Server.start(&Err)) {
    std::fprintf(stderr, "facilesimd: selftest start failed: %s\n",
                 Err.c_str());
    return 3;
  }
  Client C;
  if (!C.connectTcp(Server.port(), &Err)) {
    std::fprintf(stderr, "facilesimd: selftest connect failed: %s\n",
                 Err.c_str());
    return 3;
  }
  bool Ok = runProtocolSelftest(C, Err, /*SendShutdown=*/true);
  C.close();
  Server.wait();
  if (!Ok) {
    std::fprintf(stderr, "facilesimd: selftest FAILED: %s\n", Err.c_str());
    return 1;
  }
  std::printf("facilesimd: selftest ok\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  ServerOptions Opts;
  bool Selftest = false;

  uint64_t Port = 0, Workers = 4, MaxSessions = 256;
  uint64_t MaxSteps = Opts.MaxStepsPerRequest, MaxQueue = 1024;
  uint64_t MaxOverlayMb = 0;

  support::ArgParse P("facilesimd");
  P.u64("port", Port, "<n>",
        "listen on TCP 127.0.0.1:<n> (0 = ephemeral;\nthe bound port is "
        "printed on stdout)",
        /*Min=*/0, /*Max=*/65535);
  P.str("unix", Opts.UnixPath, "<path>",
        "listen on a Unix-domain socket instead");
  P.u64("workers", Workers, "<n>",
        "verb-execution worker threads (default 4)", /*Min=*/1, /*Max=*/256);
  P.u64("max-sessions", MaxSessions, "<n>",
        "concurrent session cap (default 256)", /*Min=*/1);
  P.u64("max-steps-per-request", MaxSteps, "<n>",
        "run/step bound per request", /*Min=*/1);
  P.str("cache-store", Opts.CacheStorePath, "<dir>",
        "shared action-cache store: memoizing sessions\nattach the newest "
        "compatible generation as a\nread-only base (one mapping per store "
        "file,\nshared by every session)");
  P.custom("jit", "on|off|auto",
           "default execution backend for sessions\n(per-create 'backend' "
           "overrides; default auto)",
           [&Opts](const std::string &V, std::string &Err) {
             rt::BackendKind K;
             if (!rt::parseBackendKind(V, K)) {
               Err = "--jit takes on, off or auto, not '" + V + "'";
               return false;
             }
             Opts.DefaultSimOptions.Backend = K;
             return true;
           });
  P.custom("jit-threshold", "<n>",
           "replays before an action is compiled\n(default 32)",
           [&Opts](const std::string &V, std::string &Err) {
             char *End = nullptr;
             uint64_t N = std::strtoull(V.c_str(), &End, 10);
             if (V.empty() || End != V.c_str() + V.size() || N == 0 ||
                 N > UINT32_MAX) {
               Err = "--jit-threshold takes a positive count, not '" + V +
                     "'";
               return false;
             }
             Opts.DefaultSimOptions.JitThreshold = static_cast<uint32_t>(N);
             return true;
           });
  P.u64("default-deadline-ms", Opts.DefaultDeadlineMs, "<n>",
        "default per-request deadline on step/run\n(0 = none; requests may "
        "override)");
  P.u64("max-queue", MaxQueue, "<n>",
        "admission control: queued-request cap before\nrejecting with "
        "overloaded (default 1024)",
        /*Min=*/1);
  P.u64("conn-idle-ms", Opts.ConnIdleTimeoutMs, "<n>",
        "close connections idle this long (0 = never;\ndefault 300000)");
  P.u64("session-ttl-ms", Opts.SessionIdleTtlMs, "<n>",
        "spill sessions idle this long to a snapshot,\nrestorable via "
        "create+resume_token (0 = never)");
  P.u64("drain-ms", Opts.DrainDeadlineMs, "<n>",
        "SIGTERM drain deadline (default 5000)");
  P.u64("store-gc-keep", Opts.StoreGcKeep, "<n>",
        "periodically unlink all but the newest <n>\nstore generations per "
        "compat key (0 = off)");
  P.u64("max-overlay-mb", MaxOverlayMb, "<n>",
        "LRU bound on aggregate session overlay bytes\n(0 = unbounded)");
  P.flag("selftest", Selftest,
         "run the protocol self-test in-process, exit");
  P.epilog("\nexit status: 0 ok, 1 selftest failure, 2 bad usage or socket "
           "owned\nby a live daemon, 3 socket error\n");

  if (int Rc = P.parse(argc, argv); Rc != support::ArgParse::KeepGoing)
    return Rc;
  Opts.TcpPort = static_cast<uint16_t>(Port);
  Opts.Workers = static_cast<unsigned>(Workers);
  Opts.MaxSessions = static_cast<unsigned>(MaxSessions);
  Opts.MaxStepsPerRequest = MaxSteps;
  Opts.MaxQueueDepth = static_cast<uint32_t>(MaxQueue);
  Opts.MaxOverlayBytes = static_cast<size_t>(MaxOverlayMb) << 20;

  if (Selftest)
    return runSelftest();
  if (!P.seen("port") && Opts.UnixPath.empty()) {
    std::fprintf(stderr,
                 "facilesimd: need --port=<n>, --unix=<path> or --selftest\n");
    P.printUsage(stderr);
    return 2;
  }

  FacileServer Server(std::move(Opts));
  std::string Err;
  if (!Server.start(&Err)) {
    std::fprintf(stderr, "facilesimd: %s\n", Err.c_str());
    // A socket path held by a live daemon is an operator mistake (running
    // twice), not a socket error; stale sockets are rebound silently.
    return Server.addressInUse() ? 2 : 3;
  }
  SignalServer = &Server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // The bound port on stdout lets wrappers use --port=0 ephemeral binds.
  std::printf("facilesimd: listening on %s\n",
              Server.port() != 0
                  ? ("127.0.0.1:" + std::to_string(Server.port())).c_str()
                  : "unix socket");
  std::fflush(stdout);
  Server.wait();
  return 0;
}
