//===- facilesim.cpp - Run a Facile simulator with snapshot support ----------===//
//
// Command-line driver for the compiled simulators in src/sims/: pick a
// simulator and a synthetic workload, run to an instruction budget, and
// save or restore snapshot containers (checkpoints and persistent action
// caches) around the run. This is the user-facing surface of the snapshot
// subsystem: a long simulation can be stopped and resumed bit-identically,
// or a later run warm-started from a previous run's action cache.
//
//   facilesim --sim=ooo --workload=gcc --instrs=2000000
//             --save-checkpoint=gcc.ckpt --save-cache=gcc.acache
//   facilesim --sim=ooo --workload=gcc --instrs=4000000
//             --load-checkpoint=gcc.ckpt --load-cache=gcc.acache --json
//
// Failed loads (missing file, corruption, stale compatibility key) print a
// diagnostic and fall back to a cold start; they are not fatal. --require-warm
// upgrades a cold fallback to exit status 1 for CI smoke tests.
//
//===----------------------------------------------------------------------===//

#include "src/inject/FaultInjector.h"
#include "src/sims/SimHarness.h"
#include "src/store/CacheStore.h"
#include "src/support/ArgParse.h"
#include "src/telemetry/Metrics.h"
#include "src/telemetry/Profiler.h"
#include "src/telemetry/Trace.h"
#include "src/workload/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace facile;
using namespace facile::sims;

int main(int Argc, char **Argv) {
  std::string SimName = "ooo", WorkloadName = "compress";
  uint64_t Instrs = 1'000'000;
  rt::Simulation::Options Opts;
  std::string SaveCkpt, LoadCkpt, SaveCache, LoadCache;
  std::string CacheStorePath;
  std::string TraceFile, MetricsFile;
  uint64_t TraceBuffer = 1u << 16;
  uint64_t TopActions = 0, ProfilePeriod = 1;
  bool Json = false, RequireWarm = false;
  bool StorePromote = false, PrintDigest = false;
  bool StoreGc = false;
  uint64_t StoreGcKeep = 1;
  bool Injecting = false;
  inject::InjectSpec InjSpec;

  support::ArgParse P("facilesim");
  P.choice("sim", SimName, {"functional", "inorder", "ooo"},
           "simulator to run (default ooo)");
  P.str("workload", WorkloadName, "<name>",
        "suite entry, e.g. gcc or 126.gcc\n(default compress)");
  P.u64("instrs", Instrs, "<n>",
        "total retired-instruction target,\nincluding instructions restored "
        "from\na checkpoint (default 1000000)");
  P.custom("cache-budget-mb", "<n>",
           "action-cache byte budget (default 256)",
           [&Opts](const std::string &V, std::string &) {
             Opts.CacheBudgetBytes = std::strtoull(V.c_str(), nullptr, 10)
                                     << 20;
             return true;
           });
  P.custom("eviction", "clearall|segmented",
           "eviction policy (default clearall)",
           [&Opts](const std::string &V, std::string &Err) {
             if (V == "clearall")
               Opts.Eviction = rt::EvictionPolicy::ClearAll;
             else if (V == "segmented")
               Opts.Eviction = rt::EvictionPolicy::Segmented;
             else {
               Err = "unknown eviction policy '" + V + "'";
               return false;
             }
             return true;
           });
  bool NoMemo = false;
  P.flag("no-memo", NoMemo, "disable memoization (slow path only)");
  P.custom("jit", "on|off|auto",
           "memoized-replay execution backend:\non asks for the template "
           "JIT (degrades\nto the interpreter where unsupported),\noff "
           "forces the interpreter, auto picks\nthe JIT when the host "
           "supports it\n(default auto)",
           [&Opts](const std::string &V, std::string &Err) {
             if (V == "on")
               Opts.Backend = rt::BackendKind::Jit;
             else if (V == "off")
               Opts.Backend = rt::BackendKind::Interpret;
             else if (V == "auto")
               Opts.Backend = rt::BackendKind::Auto;
             else {
               Err = "--jit takes on, off or auto, not '" + V + "'";
               return false;
             }
             return true;
           });
  P.custom("jit-threshold", "<n>",
           "replays before an action is compiled\n(default 32)",
           [&Opts](const std::string &V, std::string &Err) {
             char *End = nullptr;
             uint64_t N = std::strtoull(V.c_str(), &End, 10);
             if (V.empty() || End != V.c_str() + V.size() || N == 0 ||
                 N > UINT32_MAX) {
               Err = "--jit-threshold takes a positive count, not '" + V +
                     "'";
               return false;
             }
             Opts.JitThreshold = static_cast<uint32_t>(N);
             return true;
           });
  P.str("save-checkpoint", SaveCkpt, "<file>",
        "write full state after the run");
  P.str("load-checkpoint", LoadCkpt, "<file>",
        "resume state before the run");
  P.str("save-cache", SaveCache, "<file>",
        "write the action cache after the run");
  P.str("load-cache", LoadCache, "<file>",
        "warm-start from a saved action cache");
  P.str("cache-store", CacheStorePath, "<dir>",
        "shared action-cache store: map the\nnewest compatible generation as "
        "a\nread-only base, record new work to a\nprivate overlay (miss = "
        "cold start)");
  P.flag("store-promote", StorePromote,
         "after the run, write base+overlay as\nthe next store generation "
         "(requires\n--cache-store)");
  P.optU64("store-gc", StoreGc, StoreGcKeep, "<keep>",
           "maintenance mode: unlink all but the\nnewest <keep> generations "
           "per compat\nkey (default 1) and exit without\nsimulating "
           "(requires --cache-store)",
           /*Min=*/1);
  P.flag("digest", PrintDigest,
         "print the final memory digest as\n'facilesim: digest <16 hex>'");
  P.flag("require-warm", RequireWarm,
         "exit 1 unless a cache was loaded and\nfast replay actually ran");
  P.u64("max-steps", Opts.StepLimit, "<n>",
        "step watchdog: fault (step-limit)\nafter n simulation steps "
        "(default off)");
  P.custom("mem-budget", "<mb>",
           "resident target-memory budget in MB;\nexceeding it faults "
           "(default off)",
           [&Opts](const std::string &V, std::string &) {
             Opts.MemPageBudget = static_cast<size_t>(
                 (std::strtoull(V.c_str(), nullptr, 10) << 20) /
                 TargetMemory::PageSize);
             return true;
           });
  P.onOff("guards", Opts.Guards,
          "guarded execution: bounds and seal\nchecks on replay (default "
          "on)");
  P.custom("fault-inject", "<spec>",
           "seeded corruption campaign, e.g.\nseed:42,mem:0.01,cache:0.05,\n"
           "extern:0.001,plan:0.0001",
           [&InjSpec, &Injecting](const std::string &V, std::string &Err) {
             std::string E;
             if (!inject::InjectSpec::parse(V, InjSpec, E)) {
               Err = "bad --fault-inject spec: " + E;
               return false;
             }
             Injecting = true;
             return true;
           });
  P.flag("json", Json, "print the stats JSON line");
  P.str("metrics", MetricsFile, "<file>", "write the stats JSON to a file");
  P.str("trace", TraceFile, "<file>",
        "write a Chrome trace-event JSON of\nthe run (chrome://tracing, "
        "Perfetto)");
  P.u64("trace-buffer", TraceBuffer, "<n>",
        "trace ring capacity in events\n(default 65536; oldest dropped)");
  P.u64("top-actions", TopActions, "<n>",
        "profile replay and print the n\nhottest actions (default off)");
  P.u64("profile-period", ProfilePeriod, "<n>",
        "sample every n-th memoized step\n(default 1 with --top-actions)",
        /*Min=*/1);
  P.epilog("\nexit status: 0 ok, 1 save/require-warm failure, 2 bad usage,\n"
           "             3 structured simulation fault (see the "
           "diagnostic)\n");

  if (int Rc = P.parse(Argc, Argv); Rc != support::ArgParse::KeepGoing)
    return Rc;
  if (NoMemo)
    Opts.Memoize = false;

  if (StorePromote && CacheStorePath.empty()) {
    std::fprintf(stderr, "error: --store-promote requires --cache-store\n");
    return 2;
  }
  if (StoreGc) {
    if (CacheStorePath.empty()) {
      std::fprintf(stderr, "error: --store-gc requires --cache-store\n");
      return 2;
    }
    store::CacheStoreDir Dir(CacheStorePath);
    std::string Err;
    size_t Unlinked = Dir.gc(static_cast<size_t>(StoreGcKeep), &Err);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: store gc: %s\n", Err.c_str());
      return 1;
    }
    std::printf("facilesim: store gc unlinked %zu generation%s (kept newest "
                "%llu per key)\n",
                Unlinked, Unlinked == 1 ? "" : "s",
                (unsigned long long)StoreGcKeep);
    return 0;
  }

  SimKind Kind;
  if (SimName == "functional")
    Kind = SimKind::Functional;
  else if (SimName == "inorder")
    Kind = SimKind::InOrder;
  else
    Kind = SimKind::OutOfOrder;

  const workload::WorkloadSpec *Spec = workload::findSpec(WorkloadName);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown workload '%s'; suite entries:\n",
                 WorkloadName.c_str());
    for (const workload::WorkloadSpec &S : workload::spec95Suite())
      std::fprintf(stderr, "  %s\n", S.Name.c_str());
    return 2;
  }

  // A corruption campaign must terminate even if an undetected flip sends
  // the workload into an endless loop: give it a default step watchdog.
  if (Injecting && Opts.StepLimit == 0)
    Opts.StepLimit = Instrs * 16 + 1'000'000;

  // An effectively unbounded outer loop: runs stop on the --instrs budget.
  isa::TargetImage Image = workload::generate(*Spec, 1u << 30);
  FacileSim Sim(Kind, Image, Opts);
  inject::FaultInjector Inj(Sim.sim(), InjSpec);
  if (Injecting)
    Inj.arm();

  telemetry::EventTracer Tracer(static_cast<size_t>(TraceBuffer));
  if (!TraceFile.empty())
    Sim.setTracer(&Tracer);
  std::unique_ptr<telemetry::ActionProfiler> Prof;
  if (TopActions > 0) {
    Prof = std::make_unique<telemetry::ActionProfiler>(
        Sim.sim().actionCount(), static_cast<uint32_t>(ProfilePeriod));
    Sim.setProfiler(Prof.get());
    Sim.setTopActions(static_cast<size_t>(TopActions));
  }

  // Restore order matters: the checkpoint rewinds the simulation to a
  // saved point, then the action cache pre-populates memoized actions for
  // the run ahead. Failures fall back to a cold start (diagnostic on
  // stderr via the harness).
  if (!LoadCkpt.empty() && Sim.loadCheckpoint(LoadCkpt))
    std::fprintf(stderr, "facilesim: resumed from %s (%llu instrs retired)\n",
                 LoadCkpt.c_str(),
                 (unsigned long long)Sim.sim().stats().RetiredTotal);
  if (!LoadCache.empty() && Sim.loadCache(LoadCache))
    std::fprintf(stderr, "facilesim: warm-started from %s (%llu entries)\n",
                 LoadCache.c_str(),
                 (unsigned long long)Sim.snapshotStats().CacheEntriesLoaded);

  // The shared store maps read-only underneath any cache a --load-cache
  // already privatized, so only attach when the cache is still empty.
  std::unique_ptr<store::CacheStoreDir> StoreDir;
  if (!CacheStorePath.empty())
    StoreDir = std::make_unique<store::CacheStoreDir>(CacheStorePath);
  if (StoreDir && !Sim.snapshotStats().CacheLoaded &&
      Sim.attachStore(*StoreDir))
    std::fprintf(stderr,
                 "facilesim: attached cache store %s gen %llu (%llu entries)\n",
                 CacheStorePath.c_str(),
                 (unsigned long long)Sim.storeMapping()->generation(),
                 (unsigned long long)Sim.snapshotStats().CacheEntriesLoaded);

  uint64_t Before = Sim.sim().stats().RetiredTotal;
  if (Injecting) {
    // Interleave short run chunks with injection rolls so corruption lands
    // mid-run, against warm state, not just at the boundaries.
    while (!Sim.sim().halted() && !Sim.faulted() &&
           Sim.sim().stats().RetiredTotal < Instrs) {
      Sim.run(std::min(Instrs, Sim.sim().stats().RetiredTotal + 4096));
      Inj.inject();
    }
  } else if (Instrs > Before) {
    Sim.run(Instrs);
  }
  uint64_t Retired = Sim.sim().stats().RetiredTotal;

  std::string Err;
  if (!SaveCkpt.empty() && !Sim.saveCheckpoint(SaveCkpt, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (!SaveCache.empty() && !Sim.saveCache(SaveCache, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (StorePromote) {
    uint64_t Gen = 0;
    if (!Sim.promoteStore(*StoreDir, &Gen, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "facilesim: promoted action cache to %s gen %llu\n",
                 CacheStorePath.c_str(), (unsigned long long)Gen);
  }

  // Telemetry output: close the open step span so the buffered trace and
  // the exported metrics cover every simulated step.
  Sim.sim().flushTraceSpan();
  if (!TraceFile.empty() && !Tracer.writeFile(TraceFile, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (!MetricsFile.empty()) {
    std::string StatsLine = Sim.statsJson();
    std::FILE *F = std::fopen(MetricsFile.c_str(), "wb");
    bool Ok = F && std::fwrite(StatsLine.data(), 1, StatsLine.size(), F) ==
                       StatsLine.size() &&
              std::fputc('\n', F) != EOF;
    if (F)
      Ok = std::fclose(F) == 0 && Ok;
    if (!Ok) {
      std::fprintf(stderr, "error: cannot write metrics file '%s'\n",
                   MetricsFile.c_str());
      return 1;
    }
  }

  std::printf("facilesim: %s on %s: %llu instrs retired (%llu this run), "
              "%.3f%% fast-forwarded\n",
              SimName.c_str(), Spec->Name.c_str(),
              (unsigned long long)Retired,
              (unsigned long long)(Retired - Before),
              Sim.sim().stats().fastForwardedPct());
  if (PrintDigest)
    std::printf("facilesim: digest %016llx\n",
                (unsigned long long)Sim.sim().memory().digest());
  if (Json)
    std::printf("%s\n", Sim.statsJson().c_str());

  if (Prof) {
    std::printf("facilesim: top %llu actions by replayed instructions "
                "(%llu steps sampled, period %llu):\n",
                (unsigned long long)TopActions,
                (unsigned long long)Prof->sampledSteps(),
                (unsigned long long)ProfilePeriod);
    std::printf("  %5s %8s %12s %14s %14s\n", "rank", "action", "nodes",
                "instrs", "bytes");
    std::vector<telemetry::ActionProfiler::Entry> Top =
        Prof->top(static_cast<size_t>(TopActions));
    for (size_t I = 0; I != Top.size(); ++I)
      std::printf("  %5zu %8u %12llu %14llu %14llu\n", I, Top[I].ActionId,
                  (unsigned long long)Top[I].Nodes,
                  (unsigned long long)Top[I].Instrs,
                  (unsigned long long)Top[I].Bytes);
  }

  // A structured fault is a clean, diagnosable stop — never a crash. It
  // has its own exit status so harnesses can tell it from success (0) and
  // usage/IO errors (1, 2).
  if (Sim.faulted()) {
    const rt::SimFault &F = Sim.fault();
    std::fprintf(stderr,
                 "facilesim: fault: %s at step %llu (pc 0x%llx): %s\n",
                 rt::faultKindName(F.Kind), (unsigned long long)F.Step,
                 (unsigned long long)F.Pc, F.Detail.c_str());
    if (Injecting) {
      const inject::FaultInjector::Counters &IC = Inj.counters();
      std::fprintf(stderr,
                   "facilesim: injected: %llu mem, %llu node, %llu seal, "
                   "%llu pool, %llu extern, %llu plan\n",
                   (unsigned long long)IC.MemFlips,
                   (unsigned long long)IC.CacheNodeFlips,
                   (unsigned long long)IC.CacheSealFlips,
                   (unsigned long long)IC.CachePoolFlips,
                   (unsigned long long)IC.ExternFails,
                   (unsigned long long)IC.PlanTruncations);
    }
    return 3;
  }

  if (RequireWarm) {
    const FacileSim::SnapshotStats &SS = Sim.snapshotStats();
    if (!SS.CacheLoaded || SS.CacheEntriesLoaded == 0 ||
        Sim.sim().stats().FastSteps == 0) {
      std::fprintf(stderr,
                   "error: --require-warm: no warm start happened "
                   "(cache_loaded=%d entries=%llu fast_steps=%llu)\n",
                   SS.CacheLoaded ? 1 : 0,
                   (unsigned long long)SS.CacheEntriesLoaded,
                   (unsigned long long)Sim.sim().stats().FastSteps);
      return 1;
    }
  }
  return 0;
}
