//===- facilesim.cpp - Run a Facile simulator with snapshot support ----------===//
//
// Command-line driver for the compiled simulators in src/sims/: pick a
// simulator and a synthetic workload, run to an instruction budget, and
// save or restore snapshot containers (checkpoints and persistent action
// caches) around the run. This is the user-facing surface of the snapshot
// subsystem: a long simulation can be stopped and resumed bit-identically,
// or a later run warm-started from a previous run's action cache.
//
//   facilesim --sim=ooo --workload=gcc --instrs=2000000
//             --save-checkpoint=gcc.ckpt --save-cache=gcc.acache
//   facilesim --sim=ooo --workload=gcc --instrs=4000000
//             --load-checkpoint=gcc.ckpt --load-cache=gcc.acache --json
//
// Failed loads (missing file, corruption, stale compatibility key) print a
// diagnostic and fall back to a cold start; they are not fatal. --require-warm
// upgrades a cold fallback to exit status 1 for CI smoke tests.
//
//===----------------------------------------------------------------------===//

#include "src/inject/FaultInjector.h"
#include "src/sims/SimHarness.h"
#include "src/store/CacheStore.h"
#include "src/telemetry/Metrics.h"
#include "src/telemetry/Profiler.h"
#include "src/telemetry/Trace.h"
#include "src/workload/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace facile;
using namespace facile::sims;

namespace {

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --sim=functional|inorder|ooo   simulator to run (default ooo)\n"
      "  --workload=<name>              suite entry, e.g. gcc or 126.gcc\n"
      "                                 (default compress)\n"
      "  --instrs=<n>                   total retired-instruction target,\n"
      "                                 including instructions restored from\n"
      "                                 a checkpoint (default 1000000)\n"
      "  --cache-budget-mb=<n>          action-cache byte budget (default 256)\n"
      "  --eviction=clearall|segmented  eviction policy (default clearall)\n"
      "  --no-memo                      disable memoization (slow path only)\n"
      "  --save-checkpoint=<file>       write full state after the run\n"
      "  --load-checkpoint=<file>       resume state before the run\n"
      "  --save-cache=<file>            write the action cache after the run\n"
      "  --load-cache=<file>            warm-start from a saved action cache\n"
      "  --cache-store=<dir>            shared action-cache store: map the\n"
      "                                 newest compatible generation as a\n"
      "                                 read-only base, record new work to a\n"
      "                                 private overlay (miss = cold start)\n"
      "  --store-promote                after the run, write base+overlay as\n"
      "                                 the next store generation (requires\n"
      "                                 --cache-store)\n"
      "  --store-gc[=<keep>]            maintenance mode: unlink all but the\n"
      "                                 newest <keep> generations per compat\n"
      "                                 key (default 1) and exit without\n"
      "                                 simulating (requires --cache-store)\n"
      "  --digest                       print the final memory digest as\n"
      "                                 'facilesim: digest <16 hex>'\n"
      "  --require-warm                 exit 1 unless a cache was loaded and\n"
      "                                 fast replay actually ran\n"
      "  --max-steps=<n>                step watchdog: fault (step-limit)\n"
      "                                 after n simulation steps (default off)\n"
      "  --mem-budget=<mb>              resident target-memory budget in MB;\n"
      "                                 exceeding it faults (default off)\n"
      "  --guards=on|off                guarded execution: bounds and seal\n"
      "                                 checks on replay (default on)\n"
      "  --fault-inject=<spec>          seeded corruption campaign, e.g.\n"
      "                                 seed:42,mem:0.01,cache:0.05,\n"
      "                                 extern:0.001,plan:0.0001\n"
      "  --json                         print the stats JSON line\n"
      "  --metrics=<file>               write the stats JSON to a file\n"
      "  --trace=<file>                 write a Chrome trace-event JSON of\n"
      "                                 the run (chrome://tracing, Perfetto)\n"
      "  --trace-buffer=<n>             trace ring capacity in events\n"
      "                                 (default 65536; oldest dropped)\n"
      "  --top-actions=<n>              profile replay and print the n\n"
      "                                 hottest actions (default off)\n"
      "  --profile-period=<n>           sample every n-th memoized step\n"
      "                                 (default 1 with --top-actions)\n"
      "\n"
      "exit status: 0 ok, 1 save/require-warm failure, 2 bad usage,\n"
      "             3 structured simulation fault (see the diagnostic)\n",
      Prog);
}

std::string argValue(const std::string &Arg, const char *Prefix) {
  size_t N = std::strlen(Prefix);
  return Arg.rfind(Prefix, 0) == 0 ? Arg.substr(N) : std::string();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SimName = "ooo", WorkloadName = "compress";
  uint64_t Instrs = 1'000'000;
  rt::Simulation::Options Opts;
  std::string SaveCkpt, LoadCkpt, SaveCache, LoadCache;
  std::string CacheStorePath;
  std::string TraceFile, MetricsFile;
  uint64_t TraceBuffer = 1u << 16;
  uint64_t TopActions = 0, ProfilePeriod = 1;
  bool Json = false, RequireWarm = false;
  bool StorePromote = false, PrintDigest = false;
  bool StoreGc = false;
  uint64_t StoreGcKeep = 1;
  bool Injecting = false;
  inject::InjectSpec InjSpec;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    std::string V;
    if (!(V = argValue(Arg, "--sim=")).empty())
      SimName = V;
    else if (!(V = argValue(Arg, "--workload=")).empty())
      WorkloadName = V;
    else if (!(V = argValue(Arg, "--instrs=")).empty())
      Instrs = std::strtoull(V.c_str(), nullptr, 10);
    else if (!(V = argValue(Arg, "--cache-budget-mb=")).empty())
      Opts.CacheBudgetBytes = std::strtoull(V.c_str(), nullptr, 10) << 20;
    else if (!(V = argValue(Arg, "--eviction=")).empty()) {
      if (V == "clearall")
        Opts.Eviction = rt::EvictionPolicy::ClearAll;
      else if (V == "segmented")
        Opts.Eviction = rt::EvictionPolicy::Segmented;
      else {
        std::fprintf(stderr, "error: unknown eviction policy '%s'\n",
                     V.c_str());
        return 2;
      }
    } else if (!(V = argValue(Arg, "--save-checkpoint=")).empty())
      SaveCkpt = V;
    else if (!(V = argValue(Arg, "--load-checkpoint=")).empty())
      LoadCkpt = V;
    else if (!(V = argValue(Arg, "--save-cache=")).empty())
      SaveCache = V;
    else if (!(V = argValue(Arg, "--load-cache=")).empty())
      LoadCache = V;
    else if (!(V = argValue(Arg, "--cache-store=")).empty())
      CacheStorePath = V;
    else if (!(V = argValue(Arg, "--max-steps=")).empty())
      Opts.StepLimit = std::strtoull(V.c_str(), nullptr, 10);
    else if (!(V = argValue(Arg, "--mem-budget=")).empty())
      Opts.MemPageBudget = static_cast<size_t>(
          (std::strtoull(V.c_str(), nullptr, 10) << 20) /
          TargetMemory::PageSize);
    else if (!(V = argValue(Arg, "--guards=")).empty()) {
      if (V == "on")
        Opts.Guards = true;
      else if (V == "off")
        Opts.Guards = false;
      else {
        std::fprintf(stderr, "error: --guards takes on or off, not '%s'\n",
                     V.c_str());
        return 2;
      }
    } else if (!(V = argValue(Arg, "--fault-inject=")).empty()) {
      std::string Err;
      if (!inject::InjectSpec::parse(V, InjSpec, Err)) {
        std::fprintf(stderr, "error: bad --fault-inject spec: %s\n",
                     Err.c_str());
        return 2;
      }
      Injecting = true;
    } else if (!(V = argValue(Arg, "--trace=")).empty())
      TraceFile = V;
    else if (!(V = argValue(Arg, "--trace-buffer=")).empty())
      TraceBuffer = std::strtoull(V.c_str(), nullptr, 10);
    else if (!(V = argValue(Arg, "--metrics=")).empty())
      MetricsFile = V;
    else if (!(V = argValue(Arg, "--top-actions=")).empty())
      TopActions = std::strtoull(V.c_str(), nullptr, 10);
    else if (!(V = argValue(Arg, "--profile-period=")).empty()) {
      ProfilePeriod = std::strtoull(V.c_str(), nullptr, 10);
      if (ProfilePeriod == 0) {
        std::fprintf(stderr, "error: --profile-period must be at least 1\n");
        return 2;
      }
    } else if (Arg == "--no-memo")
      Opts.Memoize = false;
    else if (Arg == "--json")
      Json = true;
    else if (Arg == "--require-warm")
      RequireWarm = true;
    else if (Arg == "--store-promote")
      StorePromote = true;
    else if (Arg == "--store-gc")
      StoreGc = true;
    else if (!(V = argValue(Arg, "--store-gc=")).empty()) {
      StoreGc = true;
      StoreGcKeep = std::strtoull(V.c_str(), nullptr, 10);
      if (StoreGcKeep == 0) {
        std::fprintf(stderr, "error: --store-gc keep count must be >= 1\n");
        return 2;
      }
    }
    else if (Arg == "--digest")
      PrintDigest = true;
    else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      usage(Argv[0]);
      return 2;
    }
  }

  if (StorePromote && CacheStorePath.empty()) {
    std::fprintf(stderr, "error: --store-promote requires --cache-store\n");
    return 2;
  }
  if (StoreGc) {
    if (CacheStorePath.empty()) {
      std::fprintf(stderr, "error: --store-gc requires --cache-store\n");
      return 2;
    }
    store::CacheStoreDir Dir(CacheStorePath);
    std::string Err;
    size_t Unlinked = Dir.gc(static_cast<size_t>(StoreGcKeep), &Err);
    if (!Err.empty()) {
      std::fprintf(stderr, "error: store gc: %s\n", Err.c_str());
      return 1;
    }
    std::printf("facilesim: store gc unlinked %zu generation%s (kept newest "
                "%llu per key)\n",
                Unlinked, Unlinked == 1 ? "" : "s",
                (unsigned long long)StoreGcKeep);
    return 0;
  }

  SimKind Kind;
  if (SimName == "functional")
    Kind = SimKind::Functional;
  else if (SimName == "inorder")
    Kind = SimKind::InOrder;
  else if (SimName == "ooo")
    Kind = SimKind::OutOfOrder;
  else {
    std::fprintf(stderr, "error: unknown simulator '%s'\n", SimName.c_str());
    return 2;
  }

  const workload::WorkloadSpec *Spec = workload::findSpec(WorkloadName);
  if (!Spec) {
    std::fprintf(stderr, "error: unknown workload '%s'; suite entries:\n",
                 WorkloadName.c_str());
    for (const workload::WorkloadSpec &S : workload::spec95Suite())
      std::fprintf(stderr, "  %s\n", S.Name.c_str());
    return 2;
  }

  // A corruption campaign must terminate even if an undetected flip sends
  // the workload into an endless loop: give it a default step watchdog.
  if (Injecting && Opts.StepLimit == 0)
    Opts.StepLimit = Instrs * 16 + 1'000'000;

  // An effectively unbounded outer loop: runs stop on the --instrs budget.
  isa::TargetImage Image = workload::generate(*Spec, 1u << 30);
  FacileSim Sim(Kind, Image, Opts);
  inject::FaultInjector Inj(Sim.sim(), InjSpec);
  if (Injecting)
    Inj.arm();

  telemetry::EventTracer Tracer(static_cast<size_t>(TraceBuffer));
  if (!TraceFile.empty())
    Sim.setTracer(&Tracer);
  std::unique_ptr<telemetry::ActionProfiler> Prof;
  if (TopActions > 0) {
    Prof = std::make_unique<telemetry::ActionProfiler>(
        Sim.sim().actionCount(), static_cast<uint32_t>(ProfilePeriod));
    Sim.setProfiler(Prof.get());
    Sim.setTopActions(static_cast<size_t>(TopActions));
  }

  // Restore order matters: the checkpoint rewinds the simulation to a
  // saved point, then the action cache pre-populates memoized actions for
  // the run ahead. Failures fall back to a cold start (diagnostic on
  // stderr via the harness).
  if (!LoadCkpt.empty() && Sim.loadCheckpoint(LoadCkpt))
    std::fprintf(stderr, "facilesim: resumed from %s (%llu instrs retired)\n",
                 LoadCkpt.c_str(),
                 (unsigned long long)Sim.sim().stats().RetiredTotal);
  if (!LoadCache.empty() && Sim.loadCache(LoadCache))
    std::fprintf(stderr, "facilesim: warm-started from %s (%llu entries)\n",
                 LoadCache.c_str(),
                 (unsigned long long)Sim.snapshotStats().CacheEntriesLoaded);

  // The shared store maps read-only underneath any cache a --load-cache
  // already privatized, so only attach when the cache is still empty.
  std::unique_ptr<store::CacheStoreDir> StoreDir;
  if (!CacheStorePath.empty())
    StoreDir = std::make_unique<store::CacheStoreDir>(CacheStorePath);
  if (StoreDir && !Sim.snapshotStats().CacheLoaded &&
      Sim.attachStore(*StoreDir))
    std::fprintf(stderr,
                 "facilesim: attached cache store %s gen %llu (%llu entries)\n",
                 CacheStorePath.c_str(),
                 (unsigned long long)Sim.storeMapping()->generation(),
                 (unsigned long long)Sim.snapshotStats().CacheEntriesLoaded);

  uint64_t Before = Sim.sim().stats().RetiredTotal;
  if (Injecting) {
    // Interleave short run chunks with injection rolls so corruption lands
    // mid-run, against warm state, not just at the boundaries.
    while (!Sim.sim().halted() && !Sim.faulted() &&
           Sim.sim().stats().RetiredTotal < Instrs) {
      Sim.run(std::min(Instrs, Sim.sim().stats().RetiredTotal + 4096));
      Inj.inject();
    }
  } else if (Instrs > Before) {
    Sim.run(Instrs);
  }
  uint64_t Retired = Sim.sim().stats().RetiredTotal;

  std::string Err;
  if (!SaveCkpt.empty() && !Sim.saveCheckpoint(SaveCkpt, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (!SaveCache.empty() && !Sim.saveCache(SaveCache, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (StorePromote) {
    uint64_t Gen = 0;
    if (!Sim.promoteStore(*StoreDir, &Gen, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "facilesim: promoted action cache to %s gen %llu\n",
                 CacheStorePath.c_str(), (unsigned long long)Gen);
  }

  // Telemetry output: close the open step span so the buffered trace and
  // the exported metrics cover every simulated step.
  Sim.sim().flushTraceSpan();
  if (!TraceFile.empty() && !Tracer.writeFile(TraceFile, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  if (!MetricsFile.empty()) {
    std::string StatsLine = Sim.statsJson();
    std::FILE *F = std::fopen(MetricsFile.c_str(), "wb");
    bool Ok = F && std::fwrite(StatsLine.data(), 1, StatsLine.size(), F) ==
                       StatsLine.size() &&
              std::fputc('\n', F) != EOF;
    if (F)
      Ok = std::fclose(F) == 0 && Ok;
    if (!Ok) {
      std::fprintf(stderr, "error: cannot write metrics file '%s'\n",
                   MetricsFile.c_str());
      return 1;
    }
  }

  std::printf("facilesim: %s on %s: %llu instrs retired (%llu this run), "
              "%.3f%% fast-forwarded\n",
              SimName.c_str(), Spec->Name.c_str(),
              (unsigned long long)Retired,
              (unsigned long long)(Retired - Before),
              Sim.sim().stats().fastForwardedPct());
  if (PrintDigest)
    std::printf("facilesim: digest %016llx\n",
                (unsigned long long)Sim.sim().memory().digest());
  if (Json)
    std::printf("%s\n", Sim.statsJson().c_str());

  if (Prof) {
    std::printf("facilesim: top %llu actions by replayed instructions "
                "(%llu steps sampled, period %llu):\n",
                (unsigned long long)TopActions,
                (unsigned long long)Prof->sampledSteps(),
                (unsigned long long)ProfilePeriod);
    std::printf("  %5s %8s %12s %14s %14s\n", "rank", "action", "nodes",
                "instrs", "bytes");
    std::vector<telemetry::ActionProfiler::Entry> Top =
        Prof->top(static_cast<size_t>(TopActions));
    for (size_t I = 0; I != Top.size(); ++I)
      std::printf("  %5zu %8u %12llu %14llu %14llu\n", I, Top[I].ActionId,
                  (unsigned long long)Top[I].Nodes,
                  (unsigned long long)Top[I].Instrs,
                  (unsigned long long)Top[I].Bytes);
  }

  // A structured fault is a clean, diagnosable stop — never a crash. It
  // has its own exit status so harnesses can tell it from success (0) and
  // usage/IO errors (1, 2).
  if (Sim.faulted()) {
    const rt::SimFault &F = Sim.fault();
    std::fprintf(stderr,
                 "facilesim: fault: %s at step %llu (pc 0x%llx): %s\n",
                 rt::faultKindName(F.Kind), (unsigned long long)F.Step,
                 (unsigned long long)F.Pc, F.Detail.c_str());
    if (Injecting) {
      const inject::FaultInjector::Counters &IC = Inj.counters();
      std::fprintf(stderr,
                   "facilesim: injected: %llu mem, %llu node, %llu seal, "
                   "%llu pool, %llu extern, %llu plan\n",
                   (unsigned long long)IC.MemFlips,
                   (unsigned long long)IC.CacheNodeFlips,
                   (unsigned long long)IC.CacheSealFlips,
                   (unsigned long long)IC.CachePoolFlips,
                   (unsigned long long)IC.ExternFails,
                   (unsigned long long)IC.PlanTruncations);
    }
    return 3;
  }

  if (RequireWarm) {
    const FacileSim::SnapshotStats &SS = Sim.snapshotStats();
    if (!SS.CacheLoaded || SS.CacheEntriesLoaded == 0 ||
        Sim.sim().stats().FastSteps == 0) {
      std::fprintf(stderr,
                   "error: --require-warm: no warm start happened "
                   "(cache_loaded=%d entries=%llu fast_steps=%llu)\n",
                   SS.CacheLoaded ? 1 : 0,
                   (unsigned long long)SS.CacheEntriesLoaded,
                   (unsigned long long)Sim.sim().stats().FastSteps);
      return 1;
    }
  }
  return 0;
}
