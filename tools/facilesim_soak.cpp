//===- facilesim_soak.cpp - Crash-recovery soak harness for facilesimd ------===//
//
// Hammers a real facilesimd process from many client threads, kills it with
// SIGKILL mid-load, restarts it on the same endpoint, and proves the fleet
// rides through: every session recreated after the crash comes back warm
// from the shared cache store and finishes with a memory digest bit-identical
// to an in-process reference run. Along the way it exercises the resilience
// surface end to end:
//
//   - per-request deadlines (deadline_ms) raise deadline-exceeded faults and
//     the faulted sessions are proved resumable (clear-fault, then step ok);
//   - admission control under a saturated worker queue returns overloaded
//     with a retry_after_ms hint;
//   - SIGTERM triggers a graceful drain that promotes dirty memoization
//     overlays to a new store generation and exits 0 within the deadline;
//   - a stale Unix socket left by the SIGKILL is detected and rebound.
//
// A global watchdog aborts the whole harness with exit 2 if anything hangs.
//
//   facilesim_soak [--daemon=<path>] [--threads=<k>] [--sessions=<n>]
//                  [--dir=<tmpdir>] [--watchdog-ms=<n>]
//
// exit status: 0 all checks passed, 1 a check failed, 2 watchdog fired or
// setup error.
//
//===----------------------------------------------------------------------===//

#include "src/server/Client.h"
#include "src/sims/SimHarness.h"
#include "src/store/CacheStore.h"
#include "src/support/ArgParse.h"
#include "src/workload/Workloads.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <libgen.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace facile;
using namespace facile::server;

namespace {

struct Config {
  std::string DaemonPath;
  unsigned Threads = 8;
  unsigned SessionsPerThread = 5;
  std::string Dir;          // temp root (socket, store, logs)
  uint64_t WatchdogMs = 120000;
};

// Shared tallies across client threads; the final report requires most of
// these to be nonzero and DigestMismatches to stay zero.
struct Tallies {
  std::atomic<uint64_t> SessionsCompleted{0};
  std::atomic<uint64_t> DigestMismatches{0};
  std::atomic<uint64_t> DeadlineFaults{0};
  std::atomic<uint64_t> ResumeProofs{0};
  std::atomic<uint64_t> StoreAttached{0};
  std::atomic<uint64_t> PostRestartWarm{0};
  std::atomic<uint64_t> TransportRetries{0};
  std::atomic<uint64_t> ThreadFailures{0};
  std::atomic<uint64_t> Epoch{0}; // bumped when the daemon is restarted
};

uint64_t monoMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The workload every digest-checked session runs: tiny on purpose so a
// run-to-halt takes milliseconds, leaving the interesting time in the
// protocol and scheduler paths rather than simulation.
constexpr unsigned kDataKWords = 1;
constexpr unsigned kNumKernels = 2;
constexpr uint64_t kOuterIters = 1;

/// Runs the reference simulation in-process (same spec the sessions ask the
/// daemon for) and seeds the cache store with its promoted cache, so
/// daemon sessions attach warm from the very first create.
bool referenceDigest(const std::string &StoreDir, std::string &DigestHex,
                     std::string &Err) {
  const workload::WorkloadSpec *Found = workload::findSpec("compress");
  if (!Found) {
    Err = "no 'compress' workload";
    return false;
  }
  workload::WorkloadSpec Spec = *Found;
  Spec.DataKWords = kDataKWords;
  Spec.NumKernels = kNumKernels;
  rt::SharedProgram Shared(sims::simulatorProgram(sims::SimKind::Functional),
                           workload::generate(Spec, kOuterIters));
  sims::FacileSim Sim(sims::SimKind::Functional, Shared);
  Sim.run(~0ull);
  if (Sim.faulted() || !Sim.sim().halted()) {
    Err = "reference run did not halt cleanly";
    return false;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                (unsigned long long)Sim.sim().memory().digest());
  DigestHex = Buf;
  store::CacheStoreDir Store(StoreDir);
  uint64_t Gen = 0;
  if (!Sim.promoteStore(Store, &Gen, &Err))
    return false;
  return true;
}

size_t countGenerations(const std::string &StoreDir) {
  DIR *D = ::opendir(StoreDir.c_str());
  if (!D)
    return 0;
  size_t N = 0;
  while (struct dirent *E = ::readdir(D)) {
    const char *Name = E->d_name;
    size_t Len = std::strlen(Name);
    if (Len > 9 && std::strcmp(Name + Len - 9, ".facstore") == 0)
      ++N;
  }
  ::closedir(D);
  return N;
}

pid_t spawnDaemon(const Config &Cfg, const std::string &Sock,
                  const std::string &Store, const std::string &Log) {
  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid;
  // Child: route daemon output to the log, exec facilesimd with a small
  // worker pool and queue so admission control is actually reachable.
  int Fd = ::open(Log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (Fd >= 0) {
    ::dup2(Fd, 1);
    ::dup2(Fd, 2);
    ::close(Fd);
  }
  std::string UnixArg = "--unix=" + Sock;
  std::string StoreArg = "--cache-store=" + Store;
  const char *Argv[] = {Cfg.DaemonPath.c_str(), UnixArg.c_str(),
                        StoreArg.c_str(),       "--workers=2",
                        "--max-queue=4",        "--drain-ms=3000",
                        nullptr};
  ::execv(Cfg.DaemonPath.c_str(), const_cast<char **>(Argv));
  std::fprintf(stderr, "facilesim_soak: exec %s failed: %s\n",
               Cfg.DaemonPath.c_str(), std::strerror(errno));
  ::_exit(127);
}

bool waitForDaemon(const std::string &Sock, uint64_t TimeoutMs) {
  uint64_t Deadline = monoMs() + TimeoutMs;
  while (monoMs() < Deadline) {
    Client C;
    if (C.connectUnix(Sock)) {
      json::Value R;
      if (C.rpc(R"({"id":0,"verb":"ping"})", R))
        return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

/// Waits up to \p TimeoutMs for \p Pid to exit; returns true with the raw
/// wait status in \p Status.
bool waitPidMs(pid_t Pid, uint64_t TimeoutMs, int &Status) {
  uint64_t Deadline = monoMs() + TimeoutMs;
  while (monoMs() < Deadline) {
    pid_t R = ::waitpid(Pid, &Status, WNOHANG);
    if (R == Pid)
      return true;
    if (R < 0)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

/// One client thread: drives SessionsPerThread digest-checked sessions plus
/// interleaved deadline probes, reconnecting and recreating sessions from
/// scratch whenever the daemon dies underneath it.
void clientThread(unsigned ThreadIdx, const Config &Cfg,
                  const std::string &Sock, const std::string &RefDigest,
                  Tallies &T) {
  Client C;
  RetryPolicy Policy;
  Policy.MaxAttempts = 8;
  Policy.TimeoutMs = 30000;
  Policy.BaseBackoffMs = 10;
  C.setRetryPolicy(Policy);
  uint64_t NextId = uint64_t(ThreadIdx) << 32;

  // Connect (or reconnect after a crash) with patience: the restarted
  // daemon recompiles the simulator program on its first create.
  auto connect = [&]() -> bool {
    uint64_t Deadline = monoMs() + 30000;
    while (monoMs() < Deadline) {
      if (C.connectUnix(Sock))
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return false;
  };
  // rpcRetry with crash handling: a transport-level failure abandons the
  // current session (the daemon that owned it is gone) and reports false so
  // the caller restarts its session loop iteration.
  auto request = [&](const std::string &Req, json::Value &R) -> bool {
    std::string Err;
    if (C.rpcRetry(Req, R, &Err))
      return true;
    ++T.TransportRetries;
    C.close();
    if (!connect())
      return false;
    return C.rpcRetry(Req, R, &Err);
  };
  auto okOf = [](const json::Value &R) {
    const json::Value *Ok = R.get("ok");
    return Ok && Ok->boolOr(false);
  };

  if (!connect()) {
    ++T.ThreadFailures;
    return;
  }

  unsigned Done = 0;
  unsigned Attempts = 0;
  while (Done < Cfg.SessionsPerThread && Attempts < Cfg.SessionsPerThread * 8) {
    ++Attempts;
    bool Probe = (Done % 3) == 2; // every third session is a deadline probe
    uint64_t EpochAtCreate = T.Epoch.load();
    char Req[512];
    std::snprintf(Req, sizeof(Req),
                  "{\"id\":%llu,\"verb\":\"create\",\"sim\":\"functional\","
                  "\"workload\":\"compress\",\"data_kwords\":%u,"
                  "\"num_kernels\":%u,\"outer_iters\":%llu%s}",
                  (unsigned long long)++NextId, kDataKWords, kNumKernels,
                  (unsigned long long)kOuterIters,
                  Probe ? ",\"options\":{\"step_delay_us\":1000}" : "");
    json::Value R;
    if (!request(Req, R) || !okOf(R))
      continue; // daemon died or create raced a restart; try again
    const json::Value *Sess = R.get("session");
    if (!Sess)
      continue;
    uint64_t Session = (uint64_t)Sess->intOr(0);
    if (const json::Value *SA = R.get("store_attached");
        SA && SA->boolOr(false)) {
      ++T.StoreAttached;
      if (EpochAtCreate > 0)
        ++T.PostRestartWarm;
    }

    bool SessionOk = true;
    if (Probe) {
      // Deadline probe: a 1 ms/chunk artificial delay makes a 5 ms budget
      // certain to expire mid-run; the fault must be deadline-exceeded and
      // the session must keep working after clear-fault.
      std::snprintf(Req, sizeof(Req),
                    "{\"id\":%llu,\"verb\":\"run\",\"session\":%llu,"
                    "\"steps\":40000,\"deadline_ms\":5}",
                    (unsigned long long)++NextId, (unsigned long long)Session);
      if (!request(Req, R) || !okOf(R)) {
        SessionOk = false;
      } else {
        const json::Value *F = R.get("fault");
        const json::Value *K = F ? F->get("kind") : nullptr;
        if (K && K->strOr("") == "deadline-exceeded") {
          ++T.DeadlineFaults;
          std::snprintf(Req, sizeof(Req),
                        "{\"id\":%llu,\"verb\":\"clear-fault\","
                        "\"session\":%llu}",
                        (unsigned long long)++NextId,
                        (unsigned long long)Session);
          json::Value R2;
          if (request(Req, R2) && okOf(R2)) {
            std::snprintf(Req, sizeof(Req),
                          "{\"id\":%llu,\"verb\":\"step\",\"session\":%llu,"
                          "\"count\":1}",
                          (unsigned long long)++NextId,
                          (unsigned long long)Session);
            json::Value R3;
            if (request(Req, R3) && okOf(R3)) {
              const json::Value *Faulted = R3.get("faulted");
              if (Faulted && !Faulted->boolOr(true))
                ++T.ResumeProofs;
            }
          }
        }
        // A probe that missed its deadline (machine hiccup) is not a
        // failure; the aggregate count check catches systemic breakage.
      }
    } else {
      // Digest-checked session: run to halt, compare against the
      // in-process reference.
      bool Halted = false;
      for (int Round = 0; Round < 64 && !Halted && SessionOk; ++Round) {
        std::snprintf(Req, sizeof(Req),
                      "{\"id\":%llu,\"verb\":\"run\",\"session\":%llu,"
                      "\"steps\":4000000}",
                      (unsigned long long)++NextId,
                      (unsigned long long)Session);
        if (!request(Req, R) || !okOf(R)) {
          SessionOk = false;
          break;
        }
        const json::Value *H = R.get("halted");
        Halted = H && H->boolOr(false);
        const json::Value *F = R.get("faulted");
        if (F && F->boolOr(false)) {
          SessionOk = false; // unexpected fault in a clean run
          ++T.ThreadFailures;
        }
      }
      if (SessionOk && Halted) {
        std::snprintf(Req, sizeof(Req),
                      "{\"id\":%llu,\"verb\":\"inspect\",\"session\":%llu,"
                      "\"what\":\"digest\"}",
                      (unsigned long long)++NextId,
                      (unsigned long long)Session);
        if (request(Req, R) && okOf(R)) {
          const json::Value *D = R.get("digest");
          if (!D || D->strOr("") != RefDigest)
            ++T.DigestMismatches;
        } else {
          SessionOk = false;
        }
      } else if (SessionOk) {
        SessionOk = false; // never halted within the round budget
      }
    }

    if (SessionOk) {
      std::snprintf(Req, sizeof(Req),
                    "{\"id\":%llu,\"verb\":\"destroy\",\"session\":%llu}",
                    (unsigned long long)++NextId, (unsigned long long)Session);
      request(Req, R); // best-effort; the daemon may have restarted
      ++Done;
      ++T.SessionsCompleted;
    }
    // A failed session (daemon crash) is simply retried: the next create
    // lands on the restarted daemon and attaches the store warm.
  }
  if (Done < Cfg.SessionsPerThread)
    ++T.ThreadFailures;
  C.close();
}

/// Saturates the restarted daemon's 2-worker/4-deep queue: two hog sessions
/// occupy both workers for hundreds of milliseconds while a burst of pings
/// overflows the queue. Returns how many overloaded rejections (with a
/// retry_after_ms hint) the burst observed.
uint64_t overloadBurst(const std::string &Sock) {
  Client Hog1, Hog2, Burst;
  if (!Hog1.connectUnix(Sock) || !Hog2.connectUnix(Sock) ||
      !Burst.connectUnix(Sock))
    return 0;
  json::Value R;
  uint64_t S1 = 0, S2 = 0;
  const char *CreateSlow =
      "{\"id\":1,\"verb\":\"create\",\"sim\":\"functional\","
      "\"workload\":\"compress\",\"data_kwords\":1,\"num_kernels\":2,"
      "\"outer_iters\":1,\"options\":{\"step_delay_us\":5000}}";
  if (Hog1.rpc(CreateSlow, R) && R.get("session"))
    S1 = (uint64_t)R.get("session")->intOr(0);
  if (Hog2.rpc(CreateSlow, R) && R.get("session"))
    S2 = (uint64_t)R.get("session")->intOr(0);
  if (!S1 || !S2)
    return 0;
  char Line[256];
  std::snprintf(Line, sizeof(Line),
                "{\"id\":2,\"verb\":\"run\",\"session\":%llu,\"steps\":20000}",
                (unsigned long long)S1);
  Hog1.sendLine(Line);
  std::snprintf(Line, sizeof(Line),
                "{\"id\":2,\"verb\":\"run\",\"session\":%llu,\"steps\":20000}",
                (unsigned long long)S2);
  Hog2.sendLine(Line);
  // Let the hogs reach the workers so the burst below contends only for
  // queue slots.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  constexpr int kBurst = 8;
  for (int I = 0; I < kBurst; ++I) {
    std::snprintf(Line, sizeof(Line), "{\"id\":%d,\"verb\":\"ping\"}",
                  100 + I);
    Burst.sendLine(Line);
  }
  uint64_t Overloaded = 0;
  for (int I = 0; I < kBurst; ++I) {
    std::string Reply;
    if (!Burst.recvLine(Reply))
      break;
    json::Value V;
    std::string PErr;
    if (!json::parse(Reply, V, PErr))
      continue;
    const json::Value *E = V.get("error");
    const json::Value *Code = E ? E->get("code") : nullptr;
    if (Code && Code->strOr("") == "overloaded" && E->get("retry_after_ms"))
      ++Overloaded;
  }
  std::string Drop;
  Hog1.recvLine(Drop); // collect the hog replies so the runs finish cleanly
  Hog2.recvLine(Drop);
  Hog1.close();
  Hog2.close();
  Burst.close();
  return Overloaded;
}

} // namespace

int main(int argc, char **argv) {
  Config Cfg;
  uint64_t NumThreads = Cfg.Threads, NumSessions = Cfg.SessionsPerThread;

  support::ArgParse P("facilesim_soak");
  P.str("daemon", Cfg.DaemonPath, "<path>",
        "facilesimd binary (default: next to this one)");
  P.u64("threads", NumThreads, "<k>", "client threads (default 8)",
        /*Min=*/1);
  P.u64("sessions", NumSessions, "<n>",
        "sessions per thread (default 5)", /*Min=*/1);
  P.str("dir", Cfg.Dir, "<tmpdir>",
        "temp root for socket/store/logs (default: mkdtemp)");
  P.u64("watchdog-ms", Cfg.WatchdogMs, "<n>",
        "abort the harness after this long");
  P.epilog("\nexit status: 0 all checks passed, 1 a check failed,\n"
           "             2 watchdog fired or setup error\n");
  if (int Rc = P.parse(argc, argv); Rc != support::ArgParse::KeepGoing)
    return Rc;
  Cfg.Threads = static_cast<unsigned>(NumThreads);
  Cfg.SessionsPerThread = static_cast<unsigned>(NumSessions);
  if (Cfg.DaemonPath.empty()) {
    // Default: facilesimd next to this binary.
    std::vector<char> Self(argv[0], argv[0] + std::strlen(argv[0]) + 1);
    Cfg.DaemonPath = std::string(::dirname(Self.data())) + "/facilesimd";
  }
  if (::access(Cfg.DaemonPath.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "facilesim_soak: daemon binary '%s' not executable\n",
                 Cfg.DaemonPath.c_str());
    return 2;
  }
  if (Cfg.Dir.empty()) {
    char Tmpl[] = "/tmp/facile-soak-XXXXXX";
    if (!::mkdtemp(Tmpl)) {
      std::fprintf(stderr, "facilesim_soak: mkdtemp failed\n");
      return 2;
    }
    Cfg.Dir = Tmpl;
  } else {
    ::mkdir(Cfg.Dir.c_str(), 0755);
  }
  std::string Sock = Cfg.Dir + "/sock";
  std::string Store = Cfg.Dir + "/store";
  std::string Log = Cfg.Dir + "/daemon.log";
  ::mkdir(Store.c_str(), 0755);
  ::signal(SIGPIPE, SIG_IGN);

  // Global watchdog: a hang anywhere (protocol deadlock, drain that never
  // finishes, waitpid that never returns) turns into exit 2, not a stuck CI
  // job.
  std::atomic<bool> WatchdogArmed{true};
  std::thread Watchdog([&] {
    uint64_t Deadline = monoMs() + Cfg.WatchdogMs;
    while (monoMs() < Deadline) {
      if (!WatchdogArmed.load())
        return;
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    std::fprintf(stderr, "facilesim_soak: WATCHDOG fired after %llu ms\n",
                 (unsigned long long)Cfg.WatchdogMs);
    ::_exit(2);
  });

  uint64_t T0 = monoMs();
  std::printf("facilesim_soak: dir=%s threads=%u sessions/thread=%u\n",
              Cfg.Dir.c_str(), Cfg.Threads, Cfg.SessionsPerThread);

  // Phase 1: in-process reference digest + warm store seed.
  std::string RefDigest, Err;
  if (!referenceDigest(Store, RefDigest, Err)) {
    std::fprintf(stderr, "facilesim_soak: reference run failed: %s\n",
                 Err.c_str());
    return 2;
  }
  std::printf("facilesim_soak: reference digest %s, store seeded (%zu gen)\n",
              RefDigest.c_str(), countGenerations(Store));

  // Phase 2: first daemon.
  pid_t PidA = spawnDaemon(Cfg, Sock, Store, Log);
  if (PidA <= 0 || !waitForDaemon(Sock, 20000)) {
    std::fprintf(stderr, "facilesim_soak: daemon A did not come up\n");
    return 2;
  }
  std::printf("facilesim_soak: daemon A up (pid %d)\n", (int)PidA);

  // Phase 3: the fleet.
  Tallies T;
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < Cfg.Threads; ++I)
    Threads.emplace_back(clientThread, I, std::cref(Cfg), std::cref(Sock),
                         std::cref(RefDigest), std::ref(T));

  // Phase 4: SIGKILL mid-load, once roughly a third of the work is done.
  uint64_t Total = uint64_t(Cfg.Threads) * Cfg.SessionsPerThread;
  uint64_t KillAt = std::max<uint64_t>(1, Total / 3);
  uint64_t KillDeadline = monoMs() + Cfg.WatchdogMs / 2;
  while (T.SessionsCompleted.load() < KillAt && monoMs() < KillDeadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ::kill(PidA, SIGKILL);
  int Status = 0;
  waitPidMs(PidA, 10000, Status);
  // Daemon A is dead: every create from here on lands on daemon B, so warm
  // attaches observed after this point prove post-restart store recovery.
  T.Epoch.fetch_add(1);
  bool StaleSocketLeft = ::access(Sock.c_str(), F_OK) == 0;
  std::printf("facilesim_soak: SIGKILL after %llu sessions; stale socket %s\n",
              (unsigned long long)T.SessionsCompleted.load(),
              StaleSocketLeft ? "left behind" : "missing (unexpected)");

  pid_t PidB = spawnDaemon(Cfg, Sock, Store, Log);
  bool Rebound = PidB > 0 && waitForDaemon(Sock, 20000);
  if (!Rebound)
    std::fprintf(stderr, "facilesim_soak: daemon B did not rebind\n");
  std::printf("facilesim_soak: daemon B %s (pid %d)\n",
              Rebound ? "rebound over stale socket" : "FAILED", (int)PidB);

  for (auto &Th : Threads)
    Th.join();
  std::printf("facilesim_soak: fleet done: %llu/%llu sessions, "
              "%llu deadline faults, %llu resume proofs, %llu warm creates "
              "(%llu post-restart), %llu digest mismatches\n",
              (unsigned long long)T.SessionsCompleted.load(),
              (unsigned long long)Total,
              (unsigned long long)T.DeadlineFaults.load(),
              (unsigned long long)T.ResumeProofs.load(),
              (unsigned long long)T.StoreAttached.load(),
              (unsigned long long)T.PostRestartWarm.load(),
              (unsigned long long)T.DigestMismatches.load());

  // Phase 5: saturate the queue and observe admission control.
  uint64_t Overloaded = Rebound ? overloadBurst(Sock) : 0;
  std::printf("facilesim_soak: overload burst observed %llu rejections\n",
              (unsigned long long)Overloaded);

  // Phase 6: leave one dirty session (different program shape, so a new
  // compat key misses the store and builds a fresh overlay), then SIGTERM
  // and require a clean drain: exit 0, within the deadline, with the
  // overlay promoted as a new store generation.
  size_t GenBefore = countGenerations(Store);
  bool DrainOk = false;
  uint64_t DrainObservedMs = 0;
  if (Rebound) {
    Client Ctl;
    if (Ctl.connectUnix(Sock)) {
      json::Value R;
      Ctl.rpc("{\"id\":1,\"verb\":\"create\",\"sim\":\"functional\","
              "\"workload\":\"compress\",\"data_kwords\":1,"
              "\"num_kernels\":3,\"outer_iters\":1}",
              R);
      if (const json::Value *S = R.get("session")) {
        char Line[256];
        std::snprintf(Line, sizeof(Line),
                      "{\"id\":2,\"verb\":\"run\",\"session\":%llu,"
                      "\"steps\":20000}",
                      (unsigned long long)S->intOr(0));
        json::Value R2;
        Ctl.rpc(Line, R2);
      }
      Ctl.close();
    }
    uint64_t DrainT0 = monoMs();
    ::kill(PidB, SIGTERM);
    if (waitPidMs(PidB, 3000 + 7000, Status)) {
      DrainObservedMs = monoMs() - DrainT0;
      DrainOk = WIFEXITED(Status) && WEXITSTATUS(Status) == 0;
    }
  }
  size_t GenAfter = countGenerations(Store);
  std::printf("facilesim_soak: drain %s in %llu ms (exit status %d), store "
              "generations %zu -> %zu\n",
              DrainOk ? "clean" : "FAILED",
              (unsigned long long)DrainObservedMs, Status, GenBefore,
              GenAfter);

  // Verdict.
  bool Pass = true;
  auto check = [&](bool Cond, const char *What) {
    if (!Cond) {
      std::fprintf(stderr, "facilesim_soak: FAIL: %s\n", What);
      Pass = false;
    }
  };
  check(T.SessionsCompleted.load() >= Total, "all sessions completed");
  check(T.DigestMismatches.load() == 0, "bit-identical digests");
  check(T.DeadlineFaults.load() > 0, "deadline-exceeded observed");
  check(T.ResumeProofs.load() > 0, "faulted sessions proved resumable");
  check(T.StoreAttached.load() > 0, "warm store attach observed");
  check(T.PostRestartWarm.load() > 0, "post-restart warm attach observed");
  check(T.ThreadFailures.load() == 0, "no thread-level failures");
  check(StaleSocketLeft && Rebound, "stale socket rebound after SIGKILL");
  check(Overloaded > 0, "overloaded + retry_after_ms observed");
  check(DrainOk, "SIGTERM drain exited 0 within deadline");
  check(GenAfter > GenBefore, "drain promoted a new store generation");

  // Machine-readable summary for CI logs.
  std::printf("{\"soak\":{\"pass\":%s,\"elapsed_ms\":%llu,"
              "\"sessions\":%llu,\"digest_mismatches\":%llu,"
              "\"deadline_faults\":%llu,\"resume_proofs\":%llu,"
              "\"warm_creates\":%llu,\"post_restart_warm\":%llu,"
              "\"transport_retries\":%llu,\"overloaded\":%llu,"
              "\"drain_ms\":%llu,\"store_generations\":%zu}}\n",
              Pass ? "true" : "false",
              (unsigned long long)(monoMs() - T0),
              (unsigned long long)T.SessionsCompleted.load(),
              (unsigned long long)T.DigestMismatches.load(),
              (unsigned long long)T.DeadlineFaults.load(),
              (unsigned long long)T.ResumeProofs.load(),
              (unsigned long long)T.StoreAttached.load(),
              (unsigned long long)T.PostRestartWarm.load(),
              (unsigned long long)T.TransportRetries.load(),
              (unsigned long long)Overloaded,
              (unsigned long long)DrainObservedMs, GenAfter);

  WatchdogArmed.store(false);
  Watchdog.join();
  return Pass ? 0 : 1;
}
