//===- facilec.cpp - The Facile compiler driver -------------------------------===//
//
// Command-line front end for the Facile compiler and runtime:
//
//   facilec check  sim.fac                 diagnose only
//   facilec ir     sim.fac                 dump the lowered, BTA-annotated IR
//   facilec actions sim.fac                dump the action table
//   facilec cfast  sim.fac                 emit the fast simulator as C
//   facilec cslow  sim.fac                 emit the slow simulator as C
//   facilec run    sim.fac prog.s [N]      assemble prog.s, run N steps
//   facilec stats  sim.fac                 binding-time statistics
//
// Multiple .fac inputs are concatenated (so `facilec run src/sims/isa.fac
// src/sims/functional.fac prog.s` runs the shipped functional simulator).
//
//===----------------------------------------------------------------------===//

#include "src/facile/CEmitter.h"
#include "src/facile/Compiler.h"
#include "src/isa/Assembler.h"
#include "src/isa/Isa.h"
#include "src/runtime/Simulation.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace facile;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: facilec <check|ir|actions|cfast|cslow|stats> <sim.fac>...\n"
      "       facilec run <sim.fac>... <prog.s> [max-steps]\n"
      "options:\n"
      "  --dump-ir=<before|after>  print the IR before or after the\n"
      "                            optimization passes (to stdout)\n"
      "  --pass-stats              print per-pass optimization statistics\n"
      "  --no-passes               disable the optimization pipeline\n");
  return 2;
}

bool readFile(const std::string &Path, std::string *Out) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    std::fprintf(stderr, "facilec: error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  char Buffer[4096];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), File)) != 0)
    Out->append(Buffer, N);
  std::fclose(File);
  return true;
}

bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

void printActions(const CompiledProgram &P) {
  std::printf("%u actions over %zu blocks (%u dynamic / %u rt-static "
              "instructions)\n",
              P.Actions.numActions(), P.Step.Blocks.size(),
              P.Bta.DynamicInsts, P.Bta.StaticInsts);
  for (uint32_t A = 0; A != P.Actions.numActions(); ++A) {
    uint32_t B = P.Actions.ActionToBlock[A];
    const ActionBlockInfo &AI = P.Actions.Blocks[B];
    const char *Kind = AI.EndsWithRet    ? "end-of-step"
                       : AI.EndsWithTest ? "result-test"
                                         : "plain";
    std::printf("  action %3u: block b%u, %zu dynamic instruction(s), %s\n",
                A, B, AI.DynInsts.size(), Kind);
  }
}

int runProgram(const CompiledProgram &P, const std::string &AsmPath,
               uint64_t MaxSteps) {
  std::string Source;
  if (!readFile(AsmPath, &Source))
    return 1;
  std::string Error;
  std::optional<isa::TargetImage> Image = isa::assemble(Source, &Error);
  if (!Image) {
    std::fprintf(stderr, "facilec: %s: %s\n", AsmPath.c_str(),
                 Error.c_str());
    return 1;
  }

  rt::Simulation Sim(P, *Image);
  if (P.findGlobal("PC"))
    Sim.setGlobal("PC", Image->Entry);
  if (const ir::GlobalVar *R = P.findGlobal("R"); R && R->IsArray)
    Sim.setGlobalElem("R", isa::StackReg, isa::DefaultStackTop);
  uint64_t Steps = Sim.run(MaxSteps).Steps;

  const rt::Simulation::Stats &S = Sim.stats();
  std::printf("steps:            %llu (%s)\n",
              static_cast<unsigned long long>(Steps),
              Sim.halted() ? "halted" : "budget exhausted");
  std::printf("retired:          %llu\n",
              static_cast<unsigned long long>(S.RetiredTotal));
  std::printf("cycles:           %llu\n",
              static_cast<unsigned long long>(S.Cycles));
  std::printf("fast-forwarded:   %.3f%%\n", S.fastForwardedPct());
  std::printf("action cache:     %zu entries, %zu bytes, %llu misses\n",
              Sim.cache().entryCount(), Sim.cache().bytes(),
              static_cast<unsigned long long>(S.Misses));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 3)
    return usage();
  std::string Mode = Argv[1];

  // Gather .fac inputs; for `run`, the first non-.fac path is the program.
  std::string FacSource;
  std::string AsmPath;
  uint64_t MaxSteps = 10'000'000;
  std::string DumpIr; // "", "before" or "after"
  bool PassStats = false;
  CompileOptions Opts;
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--dump-ir=before" || Arg == "--dump-ir=after") {
      DumpIr = Arg.substr(std::strlen("--dump-ir="));
      Opts.CaptureIrBeforePasses = DumpIr == "before";
    } else if (Arg == "--pass-stats") {
      PassStats = true;
    } else if (Arg == "--no-passes") {
      Opts.RunPasses = false;
    } else if (endsWith(Arg, ".fac")) {
      if (!readFile(Arg, &FacSource))
        return 1;
      FacSource += "\n";
    } else if (AsmPath.empty() && Mode == "run") {
      AsmPath = Arg;
    } else if (Mode == "run") {
      MaxSteps = std::strtoull(Arg.c_str(), nullptr, 0);
    } else {
      std::fprintf(stderr, "facilec: unexpected argument '%s'\n",
                   Arg.c_str());
      return usage();
    }
  }
  if (FacSource.empty())
    return usage();

  DiagnosticEngine Diag;
  std::optional<CompiledProgram> P = compileFacile(FacSource, Diag, Opts);
  // Warnings (and errors) go to stderr in either case.
  if (!Diag.diagnostics().empty())
    std::fprintf(stderr, "%s", Diag.str().c_str());
  if (!P)
    return 1;

  if (DumpIr == "before")
    std::printf("%s", P->IrBeforePasses.c_str());
  else if (DumpIr == "after")
    std::printf("%s", ir::printStepFunction(P->Step).c_str());
  if (PassStats) {
    const PassPipelineStats &PS = P->Passes;
    std::printf("pass pipeline (%u round%s):\n", PS.Rounds,
                PS.Rounds == 1 ? "" : "s");
    std::printf("  instructions:      %u -> %u\n", PS.InstsBefore,
                PS.InstsAfter);
    std::printf("  blocks:            %u -> %u\n", PS.BlocksBefore,
                PS.BlocksAfter);
    std::printf("  folded:            %u (+%u branches)\n", PS.Folded,
                PS.BranchesFolded);
    std::printf("  copies propagated: %u\n", PS.CopiesPropagated);
    std::printf("  dead removed:      %u\n", PS.DeadRemoved);
    std::printf("  jumps threaded:    %u\n", PS.JumpsThreaded);
    std::printf("  blocks merged:     %u\n", PS.BlocksMerged);
    std::printf("  blocks removed:    %u\n", PS.BlocksRemoved);
  }

  if (Mode == "check") {
    std::printf("ok\n");
    return 0;
  }
  if (Mode == "ir") {
    std::printf("%s", ir::printStepFunction(P->Step).c_str());
    return 0;
  }
  if (Mode == "actions") {
    printActions(*P);
    return 0;
  }
  if (Mode == "cfast") {
    std::printf("%s", emitFastSimulatorC(*P).c_str());
    return 0;
  }
  if (Mode == "cslow") {
    std::printf("%s", emitSlowSimulatorC(*P).c_str());
    return 0;
  }
  if (Mode == "stats") {
    std::printf("rt-static instructions: %u\n", P->Bta.StaticInsts);
    std::printf("dynamic instructions:   %u\n", P->Bta.DynamicInsts);
    std::printf("sync (flush) ops:       %u\n", P->Bta.SyncInsts);
    std::printf("split edges:            %u\n", P->Bta.SplitEdges);
    std::printf("array restarts:         %u\n", P->Bta.ArrayRestarts);
    std::printf("actions:                %u\n", P->Actions.numActions());
    std::printf("globals:                %zu (%zu init)\n",
                P->Globals.size(), P->InitGlobals.size());
    std::printf("externs:                %zu\n", P->Externs.size());
    return 0;
  }
  if (Mode == "run") {
    if (AsmPath.empty())
      return usage();
    return runProgram(*P, AsmPath, MaxSteps);
  }
  return usage();
}
