file(REMOVE_RECURSE
  "libfacile_sims.a"
)
