# Empty dependencies file for facile_sims.
# This may be replaced when dependencies are built.
