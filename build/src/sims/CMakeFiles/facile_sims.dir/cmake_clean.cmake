file(REMOVE_RECURSE
  "CMakeFiles/facile_sims.dir/SimHarness.cpp.o"
  "CMakeFiles/facile_sims.dir/SimHarness.cpp.o.d"
  "libfacile_sims.a"
  "libfacile_sims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facile_sims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
