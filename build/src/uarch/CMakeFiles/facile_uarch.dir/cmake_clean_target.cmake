file(REMOVE_RECURSE
  "libfacile_uarch.a"
)
