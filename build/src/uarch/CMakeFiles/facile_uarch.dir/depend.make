# Empty dependencies file for facile_uarch.
# This may be replaced when dependencies are built.
