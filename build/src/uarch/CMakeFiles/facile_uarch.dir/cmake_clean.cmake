file(REMOVE_RECURSE
  "CMakeFiles/facile_uarch.dir/Caches.cpp.o"
  "CMakeFiles/facile_uarch.dir/Caches.cpp.o.d"
  "CMakeFiles/facile_uarch.dir/FunctionalCore.cpp.o"
  "CMakeFiles/facile_uarch.dir/FunctionalCore.cpp.o.d"
  "CMakeFiles/facile_uarch.dir/Predictors.cpp.o"
  "CMakeFiles/facile_uarch.dir/Predictors.cpp.o.d"
  "libfacile_uarch.a"
  "libfacile_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facile_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
