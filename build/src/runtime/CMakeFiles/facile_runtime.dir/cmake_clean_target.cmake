file(REMOVE_RECURSE
  "libfacile_runtime.a"
)
