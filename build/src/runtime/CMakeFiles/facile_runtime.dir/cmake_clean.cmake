file(REMOVE_RECURSE
  "CMakeFiles/facile_runtime.dir/Simulation.cpp.o"
  "CMakeFiles/facile_runtime.dir/Simulation.cpp.o.d"
  "libfacile_runtime.a"
  "libfacile_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facile_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
