# Empty compiler generated dependencies file for facile_runtime.
# This may be replaced when dependencies are built.
