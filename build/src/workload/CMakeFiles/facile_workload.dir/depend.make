# Empty dependencies file for facile_workload.
# This may be replaced when dependencies are built.
