file(REMOVE_RECURSE
  "libfacile_workload.a"
)
