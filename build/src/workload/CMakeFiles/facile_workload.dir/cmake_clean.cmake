file(REMOVE_RECURSE
  "CMakeFiles/facile_workload.dir/Workloads.cpp.o"
  "CMakeFiles/facile_workload.dir/Workloads.cpp.o.d"
  "libfacile_workload.a"
  "libfacile_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facile_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
