# Empty dependencies file for facile_simscalar.
# This may be replaced when dependencies are built.
