file(REMOVE_RECURSE
  "CMakeFiles/facile_simscalar.dir/SimScalar.cpp.o"
  "CMakeFiles/facile_simscalar.dir/SimScalar.cpp.o.d"
  "libfacile_simscalar.a"
  "libfacile_simscalar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facile_simscalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
