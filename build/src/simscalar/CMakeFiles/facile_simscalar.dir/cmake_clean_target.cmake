file(REMOVE_RECURSE
  "libfacile_simscalar.a"
)
