# Empty compiler generated dependencies file for facile_fastsim.
# This may be replaced when dependencies are built.
