file(REMOVE_RECURSE
  "libfacile_fastsim.a"
)
