file(REMOVE_RECURSE
  "CMakeFiles/facile_fastsim.dir/FastSim.cpp.o"
  "CMakeFiles/facile_fastsim.dir/FastSim.cpp.o.d"
  "libfacile_fastsim.a"
  "libfacile_fastsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facile_fastsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
