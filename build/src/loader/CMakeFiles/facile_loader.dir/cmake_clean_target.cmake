file(REMOVE_RECURSE
  "libfacile_loader.a"
)
