# Empty compiler generated dependencies file for facile_loader.
# This may be replaced when dependencies are built.
