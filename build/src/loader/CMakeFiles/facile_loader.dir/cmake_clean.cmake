file(REMOVE_RECURSE
  "CMakeFiles/facile_loader.dir/TargetMemory.cpp.o"
  "CMakeFiles/facile_loader.dir/TargetMemory.cpp.o.d"
  "libfacile_loader.a"
  "libfacile_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facile_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
