
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/facile/Actions.cpp" "src/facile/CMakeFiles/facile_core.dir/Actions.cpp.o" "gcc" "src/facile/CMakeFiles/facile_core.dir/Actions.cpp.o.d"
  "/root/repo/src/facile/Bta.cpp" "src/facile/CMakeFiles/facile_core.dir/Bta.cpp.o" "gcc" "src/facile/CMakeFiles/facile_core.dir/Bta.cpp.o.d"
  "/root/repo/src/facile/Builtins.cpp" "src/facile/CMakeFiles/facile_core.dir/Builtins.cpp.o" "gcc" "src/facile/CMakeFiles/facile_core.dir/Builtins.cpp.o.d"
  "/root/repo/src/facile/CEmitter.cpp" "src/facile/CMakeFiles/facile_core.dir/CEmitter.cpp.o" "gcc" "src/facile/CMakeFiles/facile_core.dir/CEmitter.cpp.o.d"
  "/root/repo/src/facile/Compiler.cpp" "src/facile/CMakeFiles/facile_core.dir/Compiler.cpp.o" "gcc" "src/facile/CMakeFiles/facile_core.dir/Compiler.cpp.o.d"
  "/root/repo/src/facile/Ir.cpp" "src/facile/CMakeFiles/facile_core.dir/Ir.cpp.o" "gcc" "src/facile/CMakeFiles/facile_core.dir/Ir.cpp.o.d"
  "/root/repo/src/facile/Lexer.cpp" "src/facile/CMakeFiles/facile_core.dir/Lexer.cpp.o" "gcc" "src/facile/CMakeFiles/facile_core.dir/Lexer.cpp.o.d"
  "/root/repo/src/facile/Lower.cpp" "src/facile/CMakeFiles/facile_core.dir/Lower.cpp.o" "gcc" "src/facile/CMakeFiles/facile_core.dir/Lower.cpp.o.d"
  "/root/repo/src/facile/Parser.cpp" "src/facile/CMakeFiles/facile_core.dir/Parser.cpp.o" "gcc" "src/facile/CMakeFiles/facile_core.dir/Parser.cpp.o.d"
  "/root/repo/src/facile/Sema.cpp" "src/facile/CMakeFiles/facile_core.dir/Sema.cpp.o" "gcc" "src/facile/CMakeFiles/facile_core.dir/Sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/facile_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
