# Empty compiler generated dependencies file for facile_core.
# This may be replaced when dependencies are built.
