file(REMOVE_RECURSE
  "CMakeFiles/facile_core.dir/Actions.cpp.o"
  "CMakeFiles/facile_core.dir/Actions.cpp.o.d"
  "CMakeFiles/facile_core.dir/Bta.cpp.o"
  "CMakeFiles/facile_core.dir/Bta.cpp.o.d"
  "CMakeFiles/facile_core.dir/Builtins.cpp.o"
  "CMakeFiles/facile_core.dir/Builtins.cpp.o.d"
  "CMakeFiles/facile_core.dir/CEmitter.cpp.o"
  "CMakeFiles/facile_core.dir/CEmitter.cpp.o.d"
  "CMakeFiles/facile_core.dir/Compiler.cpp.o"
  "CMakeFiles/facile_core.dir/Compiler.cpp.o.d"
  "CMakeFiles/facile_core.dir/Ir.cpp.o"
  "CMakeFiles/facile_core.dir/Ir.cpp.o.d"
  "CMakeFiles/facile_core.dir/Lexer.cpp.o"
  "CMakeFiles/facile_core.dir/Lexer.cpp.o.d"
  "CMakeFiles/facile_core.dir/Lower.cpp.o"
  "CMakeFiles/facile_core.dir/Lower.cpp.o.d"
  "CMakeFiles/facile_core.dir/Parser.cpp.o"
  "CMakeFiles/facile_core.dir/Parser.cpp.o.d"
  "CMakeFiles/facile_core.dir/Sema.cpp.o"
  "CMakeFiles/facile_core.dir/Sema.cpp.o.d"
  "libfacile_core.a"
  "libfacile_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facile_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
