file(REMOVE_RECURSE
  "libfacile_core.a"
)
