# Empty compiler generated dependencies file for facile_support.
# This may be replaced when dependencies are built.
