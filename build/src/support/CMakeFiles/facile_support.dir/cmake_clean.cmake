file(REMOVE_RECURSE
  "CMakeFiles/facile_support.dir/Diagnostic.cpp.o"
  "CMakeFiles/facile_support.dir/Diagnostic.cpp.o.d"
  "CMakeFiles/facile_support.dir/StringUtils.cpp.o"
  "CMakeFiles/facile_support.dir/StringUtils.cpp.o.d"
  "libfacile_support.a"
  "libfacile_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facile_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
