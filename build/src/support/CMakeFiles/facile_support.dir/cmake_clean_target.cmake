file(REMOVE_RECURSE
  "libfacile_support.a"
)
