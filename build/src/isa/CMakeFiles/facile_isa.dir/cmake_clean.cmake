file(REMOVE_RECURSE
  "CMakeFiles/facile_isa.dir/Assembler.cpp.o"
  "CMakeFiles/facile_isa.dir/Assembler.cpp.o.d"
  "CMakeFiles/facile_isa.dir/Decode.cpp.o"
  "CMakeFiles/facile_isa.dir/Decode.cpp.o.d"
  "CMakeFiles/facile_isa.dir/Disasm.cpp.o"
  "CMakeFiles/facile_isa.dir/Disasm.cpp.o.d"
  "libfacile_isa.a"
  "libfacile_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facile_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
