# Empty dependencies file for facile_isa.
# This may be replaced when dependencies are built.
