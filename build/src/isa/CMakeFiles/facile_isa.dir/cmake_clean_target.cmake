file(REMOVE_RECURSE
  "libfacile_isa.a"
)
