# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_functional[1]_include.cmake")
include("/root/repo/build/tests/test_predictors[1]_include.cmake")
include("/root/repo/build/tests/test_caches[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_sims[1]_include.cmake")
include("/root/repo/build/tests/test_fastsim[1]_include.cmake")
include("/root/repo/build/tests/test_simscalar[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_cemitter[1]_include.cmake")
include("/root/repo/build/tests/test_actioncache[1]_include.cmake")
include("/root/repo/build/tests/test_runtime2[1]_include.cmake")
include("/root/repo/build/tests/test_inorder[1]_include.cmake")
