# Empty dependencies file for test_simscalar.
# This may be replaced when dependencies are built.
