file(REMOVE_RECURSE
  "CMakeFiles/test_simscalar.dir/test_simscalar.cpp.o"
  "CMakeFiles/test_simscalar.dir/test_simscalar.cpp.o.d"
  "test_simscalar"
  "test_simscalar.pdb"
  "test_simscalar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simscalar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
