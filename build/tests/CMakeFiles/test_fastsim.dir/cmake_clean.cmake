file(REMOVE_RECURSE
  "CMakeFiles/test_fastsim.dir/test_fastsim.cpp.o"
  "CMakeFiles/test_fastsim.dir/test_fastsim.cpp.o.d"
  "test_fastsim"
  "test_fastsim.pdb"
  "test_fastsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
