# Empty dependencies file for test_fastsim.
# This may be replaced when dependencies are built.
