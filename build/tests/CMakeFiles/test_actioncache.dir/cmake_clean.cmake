file(REMOVE_RECURSE
  "CMakeFiles/test_actioncache.dir/test_actioncache.cpp.o"
  "CMakeFiles/test_actioncache.dir/test_actioncache.cpp.o.d"
  "test_actioncache"
  "test_actioncache.pdb"
  "test_actioncache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_actioncache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
