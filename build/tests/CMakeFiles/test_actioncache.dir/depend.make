# Empty dependencies file for test_actioncache.
# This may be replaced when dependencies are built.
