file(REMOVE_RECURSE
  "CMakeFiles/test_runtime2.dir/test_runtime2.cpp.o"
  "CMakeFiles/test_runtime2.dir/test_runtime2.cpp.o.d"
  "test_runtime2"
  "test_runtime2.pdb"
  "test_runtime2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
