# Empty compiler generated dependencies file for test_runtime2.
# This may be replaced when dependencies are built.
