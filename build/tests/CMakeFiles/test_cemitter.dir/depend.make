# Empty dependencies file for test_cemitter.
# This may be replaced when dependencies are built.
