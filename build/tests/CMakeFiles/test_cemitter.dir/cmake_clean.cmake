file(REMOVE_RECURSE
  "CMakeFiles/test_cemitter.dir/test_cemitter.cpp.o"
  "CMakeFiles/test_cemitter.dir/test_cemitter.cpp.o.d"
  "test_cemitter"
  "test_cemitter.pdb"
  "test_cemitter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cemitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
