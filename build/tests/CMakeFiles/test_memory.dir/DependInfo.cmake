
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/test_memory.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/test_memory.dir/test_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/loader/CMakeFiles/facile_loader.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/facile_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/facile_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
