file(REMOVE_RECURSE
  "CMakeFiles/test_inorder.dir/test_inorder.cpp.o"
  "CMakeFiles/test_inorder.dir/test_inorder.cpp.o.d"
  "test_inorder"
  "test_inorder.pdb"
  "test_inorder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
