# Empty compiler generated dependencies file for test_inorder.
# This may be replaced when dependencies are built.
