file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_facile.dir/bench_fig12_facile.cpp.o"
  "CMakeFiles/bench_fig12_facile.dir/bench_fig12_facile.cpp.o.d"
  "bench_fig12_facile"
  "bench_fig12_facile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_facile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
