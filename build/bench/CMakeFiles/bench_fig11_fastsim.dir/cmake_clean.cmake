file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_fastsim.dir/bench_fig11_fastsim.cpp.o"
  "CMakeFiles/bench_fig11_fastsim.dir/bench_fig11_fastsim.cpp.o.d"
  "bench_fig11_fastsim"
  "bench_fig11_fastsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_fastsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
