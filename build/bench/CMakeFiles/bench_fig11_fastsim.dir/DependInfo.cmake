
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_fastsim.cpp" "bench/CMakeFiles/bench_fig11_fastsim.dir/bench_fig11_fastsim.cpp.o" "gcc" "bench/CMakeFiles/bench_fig11_fastsim.dir/bench_fig11_fastsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fastsim/CMakeFiles/facile_fastsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simscalar/CMakeFiles/facile_simscalar.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/facile_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/facile_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/loader/CMakeFiles/facile_loader.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/facile_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/facile_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
