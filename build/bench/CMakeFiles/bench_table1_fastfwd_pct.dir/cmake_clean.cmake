file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fastfwd_pct.dir/bench_table1_fastfwd_pct.cpp.o"
  "CMakeFiles/bench_table1_fastfwd_pct.dir/bench_table1_fastfwd_pct.cpp.o.d"
  "bench_table1_fastfwd_pct"
  "bench_table1_fastfwd_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fastfwd_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
