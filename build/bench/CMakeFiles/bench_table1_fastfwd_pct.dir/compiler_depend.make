# Empty compiler generated dependencies file for bench_table1_fastfwd_pct.
# This may be replaced when dependencies are built.
