file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cachesize.dir/bench_ablation_cachesize.cpp.o"
  "CMakeFiles/bench_ablation_cachesize.dir/bench_ablation_cachesize.cpp.o.d"
  "bench_ablation_cachesize"
  "bench_ablation_cachesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cachesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
