file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_memo_data.dir/bench_table2_memo_data.cpp.o"
  "CMakeFiles/bench_table2_memo_data.dir/bench_table2_memo_data.cpp.o.d"
  "bench_table2_memo_data"
  "bench_table2_memo_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_memo_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
