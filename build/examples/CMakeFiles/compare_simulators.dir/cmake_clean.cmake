file(REMOVE_RECURSE
  "CMakeFiles/compare_simulators.dir/compare_simulators.cpp.o"
  "CMakeFiles/compare_simulators.dir/compare_simulators.cpp.o.d"
  "compare_simulators"
  "compare_simulators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_simulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
