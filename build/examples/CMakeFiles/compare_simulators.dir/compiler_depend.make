# Empty compiler generated dependencies file for compare_simulators.
# This may be replaced when dependencies are built.
