# Empty compiler generated dependencies file for ooo_workload.
# This may be replaced when dependencies are built.
