file(REMOVE_RECURSE
  "CMakeFiles/ooo_workload.dir/ooo_workload.cpp.o"
  "CMakeFiles/ooo_workload.dir/ooo_workload.cpp.o.d"
  "ooo_workload"
  "ooo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
