# Empty dependencies file for facilec.
# This may be replaced when dependencies are built.
