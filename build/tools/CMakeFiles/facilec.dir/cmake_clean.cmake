file(REMOVE_RECURSE
  "CMakeFiles/facilec.dir/facilec.cpp.o"
  "CMakeFiles/facilec.dir/facilec.cpp.o.d"
  "facilec"
  "facilec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facilec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
